#include "stats/hypothesis.h"

#include <algorithm>
#include <cmath>

#include "stats/special.h"

namespace greater {

Result<TestResult> ChiSquareIndependenceTest(const ContingencyTable& table) {
  if (table.num_rows() < 2 || table.num_cols() < 2) {
    return Status::Invalid("chi-square test needs at least a 2x2 table");
  }
  TestResult result;
  result.statistic = table.ChiSquareStatistic();
  result.p_value = ChiSquareSf(result.statistic, table.DegreesOfFreedom());
  return result;
}

namespace {

// log P[X = a] for the hypergeometric distribution of a 2x2 table with
// fixed margins (a+b, c+d, a+c, b+d).
double LogHypergeometricProb(int a, int b, int c, int d) {
  return LogFactorial(a + b) + LogFactorial(c + d) + LogFactorial(a + c) +
         LogFactorial(b + d) - LogFactorial(a) - LogFactorial(b) -
         LogFactorial(c) - LogFactorial(d) - LogFactorial(a + b + c + d);
}

}  // namespace

Result<TestResult> FisherExactTest2x2(double a_in, double b_in, double c_in,
                                      double d_in) {
  auto is_count = [](double v) {
    return v >= 0.0 && v == std::floor(v) && v < 1e9;
  };
  if (!is_count(a_in) || !is_count(b_in) || !is_count(c_in) ||
      !is_count(d_in)) {
    return Status::Invalid("Fisher's exact test requires integer counts");
  }
  int a = static_cast<int>(a_in), b = static_cast<int>(b_in);
  int c = static_cast<int>(c_in), d = static_cast<int>(d_in);
  int n = a + b + c + d;
  if (n == 0) return Status::Invalid("Fisher's exact test on empty table");

  TestResult result;
  if (b * c == 0) {
    result.statistic = (a * d == 0) ? 1.0
                                    : std::numeric_limits<double>::infinity();
  } else {
    result.statistic = (static_cast<double>(a) * d) /
                       (static_cast<double>(b) * c);
  }

  // Two-sided: enumerate all tables with the same margins; sum the
  // probabilities of tables at most as likely as the observed one.
  int row1 = a + b;
  int col1 = a + c;
  int lo = std::max(0, col1 - (c + d));
  int hi = std::min(row1, col1);
  double log_obs = LogHypergeometricProb(a, b, c, d);
  double p = 0.0;
  for (int x = lo; x <= hi; ++x) {
    int xb = row1 - x;
    int xc = col1 - x;
    int xd = (c + d) - xc;
    double log_px = LogHypergeometricProb(x, xb, xc, xd);
    if (log_px <= log_obs + 1e-9) p += std::exp(log_px);
  }
  result.p_value = std::min(1.0, p);
  return result;
}

Result<double> KolmogorovSmirnovStatistic(std::vector<double> a,
                                          std::vector<double> b) {
  if (a.empty() || b.empty()) {
    return Status::Invalid("KS test requires non-empty samples");
  }
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  size_t i = 0, j = 0;
  double d = 0.0;
  double na = static_cast<double>(a.size());
  double nb = static_cast<double>(b.size());
  while (i < a.size() && j < b.size()) {
    double x = std::min(a[i], b[j]);
    while (i < a.size() && a[i] <= x) ++i;
    while (j < b.size() && b[j] <= x) ++j;
    double fa = static_cast<double>(i) / na;
    double fb = static_cast<double>(j) / nb;
    d = std::max(d, std::fabs(fa - fb));
  }
  return d;
}

Result<TestResult> KolmogorovSmirnovTest(std::vector<double> a,
                                         std::vector<double> b) {
  double na = static_cast<double>(a.size());
  double nb = static_cast<double>(b.size());
  GREATER_ASSIGN_OR_RETURN(double d, KolmogorovSmirnovStatistic(std::move(a),
                                                                std::move(b)));
  TestResult result;
  result.statistic = d;
  double ne = std::sqrt(na * nb / (na + nb));
  double lambda = (ne + 0.12 + 0.11 / ne) * d;
  result.p_value = KolmogorovQ(lambda);
  return result;
}

}  // namespace greater
