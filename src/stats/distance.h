#ifndef GREATER_STATS_DISTANCE_H_
#define GREATER_STATS_DISTANCE_H_

#include <map>
#include <vector>

#include "common/status.h"
#include "tabular/value.h"

namespace greater {

/// A discrete probability distribution over Values (ordered support).
using DiscreteDistribution = std::map<Value, double>;

/// Normalizes a count map into a probability distribution. Fails when the
/// total mass is zero.
Result<DiscreteDistribution> NormalizeCounts(
    const std::map<Value, size_t>& counts);

/// Wasserstein-1 (earth mover's) distance between two empirical numeric
/// samples, computed from the merged CDF difference. The "W-distance"
/// fidelity metric of Sec. 4.1.3.
Result<double> Wasserstein1(std::vector<double> a, std::vector<double> b);

/// Wasserstein-1 between two discrete distributions over a shared ordered
/// support. Categorical values are placed at their rank in the merged
/// support (unit spacing), numeric values at their numeric position — so
/// age groups 2..8 are metrically ordered while arbitrary categories get
/// label-encoded rank geometry, matching how the paper applies W-distance
/// to categorical conditionals.
Result<double> Wasserstein1Discrete(const DiscreteDistribution& p,
                                    const DiscreteDistribution& q);

/// Total variation distance: 0.5 * sum |p_i - q_i| over the merged support.
double TotalVariation(const DiscreteDistribution& p,
                      const DiscreteDistribution& q);

/// Jensen–Shannon divergence (base-2, in [0, 1]) over the merged support.
double JensenShannon(const DiscreteDistribution& p,
                     const DiscreteDistribution& q);

}  // namespace greater

#endif  // GREATER_STATS_DISTANCE_H_
