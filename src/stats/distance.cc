#include "stats/distance.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace greater {

Result<DiscreteDistribution> NormalizeCounts(
    const std::map<Value, size_t>& counts) {
  double total = 0.0;
  for (const auto& [value, count] : counts) {
    total += static_cast<double>(count);
  }
  if (total <= 0.0) {
    return Status::Invalid("cannot normalize zero-mass counts");
  }
  DiscreteDistribution dist;
  for (const auto& [value, count] : counts) {
    dist[value] = static_cast<double>(count) / total;
  }
  return dist;
}

Result<double> Wasserstein1(std::vector<double> a, std::vector<double> b) {
  if (a.empty() || b.empty()) {
    return Status::Invalid("Wasserstein distance requires non-empty samples");
  }
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  // Integrate |F_a(x) - F_b(x)| dx over the merged sample grid.
  size_t i = 0, j = 0;
  double na = static_cast<double>(a.size());
  double nb = static_cast<double>(b.size());
  double prev = std::min(a[0], b[0]);
  double dist = 0.0;
  while (i < a.size() || j < b.size()) {
    double x;
    if (i >= a.size()) {
      x = b[j];
    } else if (j >= b.size()) {
      x = a[i];
    } else {
      x = std::min(a[i], b[j]);
    }
    double fa = static_cast<double>(i) / na;
    double fb = static_cast<double>(j) / nb;
    dist += std::fabs(fa - fb) * (x - prev);
    prev = x;
    while (i < a.size() && a[i] <= x) ++i;
    while (j < b.size() && b[j] <= x) ++j;
  }
  return dist;
}

namespace {

// Merged ordered support with numeric positions: numeric values keep their
// magnitude; non-numeric values get their rank in the sorted merged support.
std::vector<std::pair<Value, double>> MergedSupport(
    const DiscreteDistribution& p, const DiscreteDistribution& q) {
  std::set<Value> support;
  bool all_numeric = true;
  for (const auto& [v, prob] : p) {
    support.insert(v);
    all_numeric = all_numeric && v.is_numeric();
  }
  for (const auto& [v, prob] : q) {
    support.insert(v);
    all_numeric = all_numeric && v.is_numeric();
  }
  std::vector<std::pair<Value, double>> out;
  double rank = 0.0;
  for (const Value& v : support) {
    out.emplace_back(v, all_numeric ? v.AsNumeric() : rank);
    rank += 1.0;
  }
  return out;
}

double MassAt(const DiscreteDistribution& d, const Value& v) {
  auto it = d.find(v);
  return it == d.end() ? 0.0 : it->second;
}

}  // namespace

Result<double> Wasserstein1Discrete(const DiscreteDistribution& p,
                                    const DiscreteDistribution& q) {
  if (p.empty() || q.empty()) {
    return Status::Invalid("Wasserstein distance of an empty distribution");
  }
  auto support = MergedSupport(p, q);
  double dist = 0.0;
  double cdf_diff = 0.0;
  for (size_t i = 0; i + 1 < support.size(); ++i) {
    cdf_diff += MassAt(p, support[i].first) - MassAt(q, support[i].first);
    double gap = support[i + 1].second - support[i].second;
    dist += std::fabs(cdf_diff) * gap;
  }
  return dist;
}

double TotalVariation(const DiscreteDistribution& p,
                      const DiscreteDistribution& q) {
  std::set<Value> support;
  for (const auto& [v, prob] : p) support.insert(v);
  for (const auto& [v, prob] : q) support.insert(v);
  double sum = 0.0;
  for (const Value& v : support) sum += std::fabs(MassAt(p, v) - MassAt(q, v));
  return 0.5 * sum;
}

double JensenShannon(const DiscreteDistribution& p,
                     const DiscreteDistribution& q) {
  std::set<Value> support;
  for (const auto& [v, prob] : p) support.insert(v);
  for (const auto& [v, prob] : q) support.insert(v);
  auto entropy_term = [](double x, double m) {
    if (x <= 0.0 || m <= 0.0) return 0.0;
    return x * std::log2(x / m);
  };
  double js = 0.0;
  for (const Value& v : support) {
    double pp = MassAt(p, v);
    double qq = MassAt(q, v);
    double m = 0.5 * (pp + qq);
    js += 0.5 * entropy_term(pp, m) + 0.5 * entropy_term(qq, m);
  }
  return std::max(0.0, std::min(1.0, js));
}

}  // namespace greater
