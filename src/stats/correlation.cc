#include "stats/correlation.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "stats/descriptive.h"

namespace greater {

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0.0;
  double mx = 0.0, my = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double dx = x[i] - mx;
    double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double CramersV(const ContingencyTable& table) {
  size_t k = std::min(table.num_rows(), table.num_cols());
  if (k < 2) return 0.0;
  double chi2 = table.ChiSquareStatistic();
  double v2 = chi2 / (table.total() * static_cast<double>(k - 1));
  return std::sqrt(std::min(1.0, std::max(0.0, v2)));
}

double CramersVBiasCorrected(const ContingencyTable& table) {
  double n = table.total();
  double r = static_cast<double>(table.num_rows());
  double c = static_cast<double>(table.num_cols());
  if (n <= 1.0 || r < 2.0 || c < 2.0) return 0.0;
  double phi2 = table.ChiSquareStatistic() / n;
  double phi2_corr = std::max(0.0, phi2 - (r - 1.0) * (c - 1.0) / (n - 1.0));
  double r_corr = r - (r - 1.0) * (r - 1.0) / (n - 1.0);
  double c_corr = c - (c - 1.0) * (c - 1.0) / (n - 1.0);
  double denom = std::min(r_corr - 1.0, c_corr - 1.0);
  if (denom <= 0.0) return 0.0;
  return std::sqrt(std::min(1.0, phi2_corr / denom));
}

double CorrelationRatio(const std::vector<Value>& categories,
                        const std::vector<double>& outcomes) {
  size_t n = std::min(categories.size(), outcomes.size());
  if (n < 2) return 0.0;
  std::map<Value, std::pair<double, double>> groups;  // sum, count
  double total_sum = 0.0;
  double total_count = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (categories[i].is_null()) continue;
    auto& [sum, count] = groups[categories[i]];
    sum += outcomes[i];
    count += 1.0;
    total_sum += outcomes[i];
    total_count += 1.0;
  }
  if (total_count < 2.0 || groups.size() < 2) return 0.0;
  double grand_mean = total_sum / total_count;
  double ss_between = 0.0;
  for (const auto& [value, sc] : groups) {
    double group_mean = sc.first / sc.second;
    ss_between += sc.second * (group_mean - grand_mean) * (group_mean - grand_mean);
  }
  double ss_total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (categories[i].is_null()) continue;
    ss_total += (outcomes[i] - grand_mean) * (outcomes[i] - grand_mean);
  }
  if (ss_total <= 0.0) return 0.0;
  return std::sqrt(std::min(1.0, std::max(0.0, ss_between / ss_total)));
}

namespace {

std::vector<double> NumericColumn(const Table& table, size_t col) {
  std::vector<double> out;
  out.reserve(table.num_rows());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    out.push_back(table.at(r, col).AsNumeric());
  }
  return out;
}

bool IsContinuous(const Field& field) {
  return field.semantic == SemanticType::kContinuous;
}

}  // namespace

Result<AssociationMatrix> ComputeAssociationMatrix(const Table& table) {
  size_t k = table.num_columns();
  if (k == 0) {
    return Status::Invalid("association matrix of an empty table");
  }
  AssociationMatrix out;
  out.names = table.schema().FieldNames();
  out.values = Matrix(k, k, 0.0);
  for (size_t i = 0; i < k; ++i) out.values(i, i) = 1.0;

  for (size_t i = 0; i < k; ++i) {
    for (size_t j = i + 1; j < k; ++j) {
      const Field& fi = table.schema().field(i);
      const Field& fj = table.schema().field(j);
      double assoc = 0.0;
      if (IsContinuous(fi) && IsContinuous(fj)) {
        assoc = std::fabs(PearsonCorrelation(NumericColumn(table, i),
                                             NumericColumn(table, j)));
      } else if (!IsContinuous(fi) && !IsContinuous(fj)) {
        // Bias-corrected Cramér's V: the plain estimator's upward bias on
        // modest samples with many categories would drown the independence
        // signal the threshold-separation step needs.
        auto ct = ContingencyTable::FromColumns(table.column(i),
                                                table.column(j));
        assoc = ct.ok() ? CramersVBiasCorrected(*ct) : 0.0;
      } else {
        // Mixed pair: grouping = the categorical side.
        size_t cat = IsContinuous(fi) ? j : i;
        size_t num = IsContinuous(fi) ? i : j;
        assoc = CorrelationRatio(table.column(cat), NumericColumn(table, num));
      }
      out.values(i, j) = assoc;
      out.values(j, i) = assoc;
    }
  }
  return out;
}

std::vector<double> OffDiagonal(const AssociationMatrix& matrix) {
  std::vector<double> out;
  size_t k = matrix.values.rows();
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = i + 1; j < k; ++j) out.push_back(matrix.values(i, j));
  }
  return out;
}

}  // namespace greater
