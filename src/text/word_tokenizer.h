#ifndef GREATER_TEXT_WORD_TOKENIZER_H_
#define GREATER_TEXT_WORD_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace greater {

/// Word-level tokenizer used by the GReaT pipeline's textual layer.
///
/// Splits text into maximal runs of [A-Za-z0-9_'^] plus single punctuation
/// tokens; whitespace separates but is not emitted. The encoded sentence
/// "Lunch is 1, Dinner is 2" tokenizes to
///   {"Lunch", "is", "1", ",", "Dinner", "is", "2"}
/// — note that the digit strings survive as standalone tokens, which is how
/// the identical-token ambiguity of the paper's Fig. 2 manifests here.
class WordTokenizer {
 public:
  /// Tokenizes one string.
  std::vector<std::string> Tokenize(const std::string& text) const;

  /// Inverse of Tokenize up to whitespace normalization: joins tokens with
  /// single spaces but attaches punctuation to the preceding token
  /// ("2 ," -> "2,").
  std::string Detokenize(const std::vector<std::string>& tokens) const;

  /// Persistence for API uniformity with BpeTokenizer (artifact kind
  /// "greater.word_tokenizer"). The tokenizer is stateless, so the
  /// artifact is a chunkless marker document; Load only validates it.
  std::string SerializeBinary() const;
  Status DeserializeBinary(std::string_view bytes);
  Status Save(const std::string& path) const;
  Status Load(const std::string& path);
};

}  // namespace greater

#endif  // GREATER_TEXT_WORD_TOKENIZER_H_
