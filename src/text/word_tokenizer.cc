#include "text/word_tokenizer.h"

#include <cctype>

#include "common/artifact_io.h"

namespace greater {
namespace {

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '\'' ||
         c == '^' || c == '-' || c == '.';
}

bool IsPunct(const std::string& token) {
  return token.size() == 1 && !IsWordChar(token[0]) &&
         !std::isspace(static_cast<unsigned char>(token[0]));
}

}  // namespace

std::vector<std::string> WordTokenizer::Tokenize(
    const std::string& text) const {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (IsWordChar(c)) {
      size_t start = i;
      while (i < text.size() && IsWordChar(text[i])) ++i;
      out.push_back(text.substr(start, i - start));
    } else {
      out.push_back(std::string(1, c));
      ++i;
    }
  }
  return out;
}

std::string WordTokenizer::Detokenize(
    const std::vector<std::string>& tokens) const {
  std::string out;
  for (const auto& token : tokens) {
    if (!out.empty() && !IsPunct(token)) out += ' ';
    out += token;
  }
  return out;
}

std::string WordTokenizer::SerializeBinary() const {
  return ArtifactWriter("greater.word_tokenizer", 1).Finish();
}

Status WordTokenizer::DeserializeBinary(std::string_view bytes) {
  GREATER_ASSIGN_OR_RETURN(
      ArtifactReader doc,
      ArtifactReader::Parse(std::string(bytes), "greater.word_tokenizer", 1));
  (void)doc;
  return Status::OK();
}

Status WordTokenizer::Save(const std::string& path) const {
  return AtomicWriteFile(path, SerializeBinary())
      .WithContext("saving word tokenizer to '" + path + "'");
}

Status WordTokenizer::Load(const std::string& path) {
  GREATER_ASSIGN_OR_RETURN_CTX(std::string bytes, ReadFileBytes(path),
                               "loading word tokenizer from '" + path + "'");
  return DeserializeBinary(bytes)
      .WithContext("loading word tokenizer from '" + path + "'");
}

}  // namespace greater
