#include "text/word_tokenizer.h"

#include <cctype>

namespace greater {
namespace {

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '\'' ||
         c == '^' || c == '-' || c == '.';
}

bool IsPunct(const std::string& token) {
  return token.size() == 1 && !IsWordChar(token[0]) &&
         !std::isspace(static_cast<unsigned char>(token[0]));
}

}  // namespace

std::vector<std::string> WordTokenizer::Tokenize(
    const std::string& text) const {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (IsWordChar(c)) {
      size_t start = i;
      while (i < text.size() && IsWordChar(text[i])) ++i;
      out.push_back(text.substr(start, i - start));
    } else {
      out.push_back(std::string(1, c));
      ++i;
    }
  }
  return out;
}

std::string WordTokenizer::Detokenize(
    const std::vector<std::string>& tokens) const {
  std::string out;
  for (const auto& token : tokens) {
    if (!out.empty() && !IsPunct(token)) out += ' ';
    out += token;
  }
  return out;
}

}  // namespace greater
