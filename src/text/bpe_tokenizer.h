#ifndef GREATER_TEXT_BPE_TOKENIZER_H_
#define GREATER_TEXT_BPE_TOKENIZER_H_

#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace greater {

/// Byte-pair-encoding subword tokenizer — the GPT-2-style tokenization
/// mechanism the paper's backbone uses. Trained on a corpus, it learns a
/// ranked merge list; encoding greedily applies the lowest-rank merge.
///
/// It reproduces the tokenization pathology of Fig. 2 at the subword level:
/// a frequent category label such as "1" becomes a single learned unit used
/// identically wherever the surface string appears, while rare semantic
/// replacements ("Male", "Chicago") decompose into multiple subwords until
/// they are frequent enough to earn merges of their own.
class BpeTokenizer {
 public:
  struct Options {
    /// Number of merge operations to learn.
    size_t num_merges = 512;
    /// Pairs must occur at least this often to be merged.
    size_t min_pair_count = 2;
  };

  /// Learns merges from whitespace-separated words of `corpus` lines.
  static Result<BpeTokenizer> Train(const std::vector<std::string>& corpus,
                                    const Options& options);
  static Result<BpeTokenizer> Train(const std::vector<std::string>& corpus) {
    return Train(corpus, Options());
  }

  /// Splits `text` into words (whitespace + punctuation, as WordTokenizer)
  /// and encodes each word into subword units. Word-final units carry the
  /// "</w>" marker so sequences decode unambiguously.
  std::vector<std::string> Tokenize(const std::string& text) const;

  /// Subword units of a single word.
  std::vector<std::string> EncodeWord(const std::string& word) const;

  /// Joins subword units back into text (units ending in "</w>" close a
  /// word; punctuation re-attaches as in WordTokenizer::Detokenize).
  std::string Detokenize(const std::vector<std::string>& tokens) const;

  /// Learned merges in rank order.
  const std::vector<std::pair<std::string, std::string>>& merges() const {
    return merges_;
  }

  /// Persistence (artifact kind "greater.bpe_tokenizer"): the ranked merge
  /// list is the tokenizer's entire state; the rank index is rebuilt on
  /// load, so a round-trip encodes every word identically.
  std::string SerializeBinary() const;
  Status DeserializeBinary(std::string_view bytes);
  Status Save(const std::string& path) const;
  Status Load(const std::string& path);

 private:
  std::vector<std::pair<std::string, std::string>> merges_;
  std::map<std::pair<std::string, std::string>, size_t> merge_rank_;
};

}  // namespace greater

#endif  // GREATER_TEXT_BPE_TOKENIZER_H_
