#include "text/vocabulary.h"

namespace greater {

const char* Vocabulary::kPadToken = "<pad>";
const char* Vocabulary::kBosToken = "<bos>";
const char* Vocabulary::kEosToken = "<eos>";
const char* Vocabulary::kUnkToken = "<unk>";

Vocabulary::Vocabulary() {
  AddToken(kPadToken);
  AddToken(kBosToken);
  AddToken(kEosToken);
  AddToken(kUnkToken);
}

TokenId Vocabulary::AddToken(const std::string& token) {
  auto it = index_.find(token);
  if (it != index_.end()) return it->second;
  TokenId id = static_cast<TokenId>(tokens_.size());
  tokens_.push_back(token);
  index_[token] = id;
  return id;
}

TokenId Vocabulary::IdOf(const std::string& token) const {
  auto it = index_.find(token);
  return it == index_.end() ? kUnkId : it->second;
}

bool Vocabulary::Contains(const std::string& token) const {
  return index_.count(token) > 0;
}

const std::string& Vocabulary::TokenOf(TokenId id) const {
  if (id < 0 || static_cast<size_t>(id) >= tokens_.size()) {
    return tokens_[kUnkId];
  }
  return tokens_[static_cast<size_t>(id)];
}

std::vector<TokenId> Vocabulary::Encode(
    const std::vector<std::string>& tokens) const {
  std::vector<TokenId> out;
  out.reserve(tokens.size());
  for (const auto& t : tokens) out.push_back(IdOf(t));
  return out;
}

std::vector<std::string> Vocabulary::Decode(
    const std::vector<TokenId>& ids) const {
  std::vector<std::string> out;
  out.reserve(ids.size());
  for (TokenId id : ids) {
    if (id == kPadId || id == kBosId || id == kEosId) continue;
    out.push_back(TokenOf(id));
  }
  return out;
}

}  // namespace greater
