#include "text/vocabulary.h"

#include "common/artifact_io.h"

namespace greater {

namespace {
constexpr char kVocabularyKind[] = "greater.vocabulary";
constexpr uint32_t kVocabularyVersion = 1;
}  // namespace

const char* Vocabulary::kPadToken = "<pad>";
const char* Vocabulary::kBosToken = "<bos>";
const char* Vocabulary::kEosToken = "<eos>";
const char* Vocabulary::kUnkToken = "<unk>";

Vocabulary::Vocabulary() {
  AddToken(kPadToken);
  AddToken(kBosToken);
  AddToken(kEosToken);
  AddToken(kUnkToken);
}

TokenId Vocabulary::AddToken(const std::string& token) {
  auto it = index_.find(token);
  if (it != index_.end()) return it->second;
  TokenId id = static_cast<TokenId>(tokens_.size());
  tokens_.push_back(token);
  index_[token] = id;
  return id;
}

TokenId Vocabulary::IdOf(const std::string& token) const {
  auto it = index_.find(token);
  return it == index_.end() ? kUnkId : it->second;
}

bool Vocabulary::Contains(const std::string& token) const {
  return index_.count(token) > 0;
}

const std::string& Vocabulary::TokenOf(TokenId id) const {
  if (id < 0 || static_cast<size_t>(id) >= tokens_.size()) {
    return tokens_[kUnkId];
  }
  return tokens_[static_cast<size_t>(id)];
}

std::vector<TokenId> Vocabulary::Encode(
    const std::vector<std::string>& tokens) const {
  std::vector<TokenId> out;
  out.reserve(tokens.size());
  for (const auto& t : tokens) out.push_back(IdOf(t));
  return out;
}

std::string Vocabulary::SerializeBinary() const {
  ByteWriter w;
  w.PutU32(static_cast<uint32_t>(tokens_.size()));
  for (const std::string& token : tokens_) w.PutString(token);
  ArtifactWriter doc(kVocabularyKind, kVocabularyVersion);
  doc.AddChunk("tokens", std::move(w).Take());
  return doc.Finish();
}

Status Vocabulary::DeserializeBinary(std::string_view bytes) {
  GREATER_ASSIGN_OR_RETURN(
      ArtifactReader doc,
      ArtifactReader::Parse(std::string(bytes), kVocabularyKind,
                            kVocabularyVersion));
  GREATER_ASSIGN_OR_RETURN(std::string_view payload, doc.Chunk("tokens"));
  ByteReader r(payload);
  uint32_t count = 0;
  GREATER_RETURN_NOT_OK(r.GetU32(&count));
  std::vector<std::string> tokens;
  tokens.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string token;
    GREATER_RETURN_NOT_OK(r.GetString(&token));
    tokens.push_back(std::move(token));
  }
  GREATER_RETURN_NOT_OK(r.ExpectEnd());
  if (tokens.size() < 4 || tokens[kPadId] != kPadToken ||
      tokens[kBosId] != kBosToken || tokens[kEosId] != kEosToken ||
      tokens[kUnkId] != kUnkToken) {
    return Status::DataLoss(
        "corrupt vocabulary: special tokens missing or misplaced");
  }
  tokens_.clear();
  index_.clear();
  for (std::string& token : tokens) {
    if (index_.count(token) > 0) {
      return Status::DataLoss("corrupt vocabulary: duplicate token '" +
                              token + "'");
    }
    index_[token] = static_cast<TokenId>(tokens_.size());
    tokens_.push_back(std::move(token));
  }
  return Status::OK();
}

Status Vocabulary::Save(const std::string& path) const {
  return AtomicWriteFile(path, SerializeBinary())
      .WithContext("saving vocabulary to '" + path + "'");
}

Status Vocabulary::Load(const std::string& path) {
  GREATER_ASSIGN_OR_RETURN_CTX(std::string bytes, ReadFileBytes(path),
                               "loading vocabulary from '" + path + "'");
  return DeserializeBinary(bytes)
      .WithContext("loading vocabulary from '" + path + "'");
}

std::vector<std::string> Vocabulary::Decode(
    const std::vector<TokenId>& ids) const {
  std::vector<std::string> out;
  out.reserve(ids.size());
  for (TokenId id : ids) {
    if (id == kPadId || id == kBosId || id == kEosId) continue;
    out.push_back(TokenOf(id));
  }
  return out;
}

}  // namespace greater
