#include "text/bpe_tokenizer.h"

#include <algorithm>
#include <unordered_map>

#include "common/artifact_io.h"
#include "common/strings.h"
#include "text/word_tokenizer.h"

namespace greater {
namespace {

constexpr char kEndOfWord[] = "</w>";

using Symbols = std::vector<std::string>;

// Initial symbol sequence of a word: one symbol per byte, last one suffixed
// with the end-of-word marker.
Symbols WordToSymbols(const std::string& word) {
  Symbols symbols;
  symbols.reserve(word.size());
  for (char c : word) symbols.emplace_back(1, c);
  if (!symbols.empty()) symbols.back() += kEndOfWord;
  return symbols;
}

struct PairHash {
  size_t operator()(const std::pair<std::string, std::string>& p) const {
    return std::hash<std::string>{}(p.first) * 31 +
           std::hash<std::string>{}(p.second);
  }
};

}  // namespace

Result<BpeTokenizer> BpeTokenizer::Train(const std::vector<std::string>& corpus,
                                         const Options& options) {
  if (corpus.empty()) {
    return Status::Invalid("BPE training corpus is empty");
  }
  // Word frequency table over the whole corpus.
  WordTokenizer word_tokenizer;
  std::unordered_map<std::string, size_t> word_counts;
  for (const auto& line : corpus) {
    for (const auto& word : word_tokenizer.Tokenize(line)) {
      ++word_counts[word];
    }
  }
  if (word_counts.empty()) {
    return Status::Invalid("BPE training corpus contains no words");
  }

  // Working representation: distinct words as symbol sequences + counts.
  std::vector<Symbols> words;
  std::vector<size_t> counts;
  words.reserve(word_counts.size());
  for (const auto& [word, count] : word_counts) {
    words.push_back(WordToSymbols(word));
    counts.push_back(count);
  }

  BpeTokenizer tokenizer;
  for (size_t step = 0; step < options.num_merges; ++step) {
    // Count adjacent pairs.
    std::unordered_map<std::pair<std::string, std::string>, size_t, PairHash>
        pair_counts;
    for (size_t w = 0; w < words.size(); ++w) {
      const Symbols& symbols = words[w];
      for (size_t i = 0; i + 1 < symbols.size(); ++i) {
        pair_counts[{symbols[i], symbols[i + 1]}] += counts[w];
      }
    }
    if (pair_counts.empty()) break;
    // Most frequent pair; ties broken lexicographically for determinism.
    auto best = pair_counts.begin();
    for (auto it = pair_counts.begin(); it != pair_counts.end(); ++it) {
      if (it->second > best->second ||
          (it->second == best->second && it->first < best->first)) {
        best = it;
      }
    }
    if (best->second < options.min_pair_count) break;
    const auto [left, right] = best->first;
    tokenizer.merge_rank_[{left, right}] = tokenizer.merges_.size();
    tokenizer.merges_.emplace_back(left, right);
    // Apply the merge to every word.
    std::string merged = left + right;
    for (auto& symbols : words) {
      Symbols next;
      next.reserve(symbols.size());
      for (size_t i = 0; i < symbols.size(); ++i) {
        if (i + 1 < symbols.size() && symbols[i] == left &&
            symbols[i + 1] == right) {
          next.push_back(merged);
          ++i;
        } else {
          next.push_back(symbols[i]);
        }
      }
      symbols = std::move(next);
    }
  }
  return tokenizer;
}

std::vector<std::string> BpeTokenizer::EncodeWord(
    const std::string& word) const {
  Symbols symbols = WordToSymbols(word);
  while (symbols.size() > 1) {
    // Lowest-rank applicable merge.
    size_t best_rank = merge_rank_.size();
    size_t best_pos = symbols.size();
    for (size_t i = 0; i + 1 < symbols.size(); ++i) {
      auto it = merge_rank_.find({symbols[i], symbols[i + 1]});
      if (it != merge_rank_.end() && it->second < best_rank) {
        best_rank = it->second;
        best_pos = i;
      }
    }
    if (best_pos == symbols.size()) break;
    symbols[best_pos] += symbols[best_pos + 1];
    symbols.erase(symbols.begin() + static_cast<ptrdiff_t>(best_pos) + 1);
  }
  return symbols;
}

std::vector<std::string> BpeTokenizer::Tokenize(const std::string& text) const {
  WordTokenizer word_tokenizer;
  std::vector<std::string> out;
  for (const auto& word : word_tokenizer.Tokenize(text)) {
    for (auto& unit : EncodeWord(word)) out.push_back(std::move(unit));
  }
  return out;
}

std::string BpeTokenizer::Detokenize(
    const std::vector<std::string>& tokens) const {
  // Reassemble words from subword units, then re-space like WordTokenizer.
  std::vector<std::string> words;
  std::string current;
  for (const auto& token : tokens) {
    if (EndsWith(token, kEndOfWord)) {
      current += token.substr(0, token.size() - 4);
      words.push_back(std::move(current));
      current.clear();
    } else {
      current += token;
    }
  }
  if (!current.empty()) words.push_back(std::move(current));
  WordTokenizer word_tokenizer;
  return word_tokenizer.Detokenize(words);
}

std::string BpeTokenizer::SerializeBinary() const {
  ByteWriter w;
  w.PutU32(static_cast<uint32_t>(merges_.size()));
  for (const auto& [left, right] : merges_) {
    w.PutString(left);
    w.PutString(right);
  }
  ArtifactWriter doc("greater.bpe_tokenizer", 1);
  doc.AddChunk("merges", std::move(w).Take());
  return doc.Finish();
}

Status BpeTokenizer::DeserializeBinary(std::string_view bytes) {
  GREATER_ASSIGN_OR_RETURN(
      ArtifactReader doc,
      ArtifactReader::Parse(std::string(bytes), "greater.bpe_tokenizer", 1));
  GREATER_ASSIGN_OR_RETURN(std::string_view payload, doc.Chunk("merges"));
  ByteReader r(payload);
  uint32_t count = 0;
  GREATER_RETURN_NOT_OK(r.GetU32(&count));
  std::vector<std::pair<std::string, std::string>> merges;
  merges.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string left, right;
    GREATER_RETURN_NOT_OK(r.GetString(&left));
    GREATER_RETURN_NOT_OK(r.GetString(&right));
    merges.emplace_back(std::move(left), std::move(right));
  }
  GREATER_RETURN_NOT_OK(r.ExpectEnd());
  merges_ = std::move(merges);
  merge_rank_.clear();
  for (size_t rank = 0; rank < merges_.size(); ++rank) {
    merge_rank_[merges_[rank]] = rank;
  }
  return Status::OK();
}

Status BpeTokenizer::Save(const std::string& path) const {
  return AtomicWriteFile(path, SerializeBinary())
      .WithContext("saving BPE tokenizer to '" + path + "'");
}

Status BpeTokenizer::Load(const std::string& path) {
  GREATER_ASSIGN_OR_RETURN_CTX(std::string bytes, ReadFileBytes(path),
                               "loading BPE tokenizer from '" + path + "'");
  return DeserializeBinary(bytes)
      .WithContext("loading BPE tokenizer from '" + path + "'");
}

}  // namespace greater
