#ifndef GREATER_TEXT_VOCABULARY_H_
#define GREATER_TEXT_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace greater {

/// Integer id of a token in a Vocabulary.
using TokenId = int32_t;

/// Bidirectional token <-> id map shared by the tokenizers and language
/// models.
///
/// The crucial property (the paper's Challenge I): ids are keyed purely by
/// the token *string*. The "1" in the Lunch column and the "1" in the
/// Access Device column receive the same id and therefore share all
/// language-model statistics — exactly the ambiguity the Data Semantic
/// Enhancement System removes by renaming categories before encoding.
class Vocabulary {
 public:
  /// Reserved special tokens, always present at fixed ids.
  static constexpr TokenId kPadId = 0;
  static constexpr TokenId kBosId = 1;
  static constexpr TokenId kEosId = 2;
  static constexpr TokenId kUnkId = 3;

  static const char* kPadToken;  // "<pad>"
  static const char* kBosToken;  // "<bos>"
  static const char* kEosToken;  // "<eos>"
  static const char* kUnkToken;  // "<unk>"

  Vocabulary();

  /// Adds `token` if absent; returns its id either way.
  TokenId AddToken(const std::string& token);

  /// Id of `token`, or kUnkId when unknown.
  TokenId IdOf(const std::string& token) const;

  /// True if `token` has been added.
  bool Contains(const std::string& token) const;

  /// Token string of `id`. Out-of-range ids render as the unk token.
  const std::string& TokenOf(TokenId id) const;

  /// Number of tokens including the four specials.
  size_t size() const { return tokens_.size(); }

  /// Encodes a token sequence (unknowns -> kUnkId).
  std::vector<TokenId> Encode(const std::vector<std::string>& tokens) const;

  /// Decodes an id sequence, skipping pad/bos/eos.
  std::vector<std::string> Decode(const std::vector<TokenId>& ids) const;

  /// Persistence (artifact kind "greater.vocabulary"; see DESIGN.md,
  /// "Durability & recovery"). SerializeBinary emits a full artifact
  /// document so vocabularies embed unchanged inside encoder/synthesizer
  /// bundles; a round-trip preserves every token at its exact id.
  std::string SerializeBinary() const;
  Status DeserializeBinary(std::string_view bytes);
  Status Save(const std::string& path) const;
  Status Load(const std::string& path);

 private:
  std::vector<std::string> tokens_;
  std::unordered_map<std::string, TokenId> index_;
};

}  // namespace greater

#endif  // GREATER_TEXT_VOCABULARY_H_
