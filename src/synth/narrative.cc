#include "synth/narrative.h"

#include <set>

#include "common/strings.h"

namespace greater {

Result<NarrativeTemplate> NarrativeTemplate::Compile(
    const std::string& pattern, const Schema& schema) {
  NarrativeTemplate out;
  out.schema_ = schema;
  std::set<std::string> used;
  std::string literal;
  size_t i = 0;
  bool last_was_placeholder = false;
  while (i < pattern.size()) {
    if (pattern[i] == '{') {
      size_t close = pattern.find('}', i);
      if (close == std::string::npos) {
        return Status::Invalid("unterminated '{' in template");
      }
      std::string column = pattern.substr(i + 1, close - i - 1);
      GREATER_ASSIGN_OR_RETURN(size_t idx, schema.FieldIndex(column));
      if (!used.insert(column).second) {
        return Status::Invalid("column '" + column +
                               "' appears twice in template");
      }
      if (last_was_placeholder && literal.empty()) {
        return Status::Invalid(
            "adjacent placeholders without separating text make parsing "
            "ambiguous");
      }
      Segment segment;
      segment.literal = std::move(literal);
      segment.column = static_cast<int>(idx);
      out.segments_.push_back(std::move(segment));
      out.column_names_.push_back(column);
      literal.clear();
      last_was_placeholder = true;
      i = close + 1;
    } else {
      literal += pattern[i];
      ++i;
    }
  }
  if (out.segments_.empty()) {
    return Status::Invalid("template contains no placeholders");
  }
  Segment tail;
  tail.literal = std::move(literal);
  out.segments_.push_back(std::move(tail));
  return out;
}

std::string NarrativeTemplate::Render(const Row& row) const {
  std::string out;
  for (const Segment& segment : segments_) {
    out += segment.literal;
    if (segment.column >= 0) {
      out += row[static_cast<size_t>(segment.column)].ToDisplayString();
    }
  }
  return out;
}

Result<std::vector<std::string>> NarrativeTemplate::RenderTable(
    const Table& table) const {
  if (!(table.schema() == schema_)) {
    return Status::Invalid("table schema differs from the template's");
  }
  std::vector<std::string> out;
  out.reserve(table.num_rows());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    out.push_back(Render(table.GetRow(r)));
  }
  return out;
}

Result<Row> NarrativeTemplate::Parse(const std::string& sentence) const {
  Row row(schema_.num_fields(), Value::Null());
  size_t pos = 0;
  for (size_t s = 0; s < segments_.size(); ++s) {
    const Segment& segment = segments_[s];
    // Match the literal prefix.
    if (sentence.compare(pos, segment.literal.size(), segment.literal) != 0) {
      return Status::DataLoss("sentence does not match template near '" +
                              segment.literal + "'");
    }
    pos += segment.literal.size();
    if (segment.column < 0) {
      if (pos != sentence.size()) {
        return Status::DataLoss("trailing text after template end");
      }
      break;
    }
    // Value runs until the next segment's literal (or end of sentence).
    const std::string& next_literal = segments_[s + 1].literal;
    size_t end;
    if (next_literal.empty()) {
      end = sentence.size();
    } else {
      end = sentence.find(next_literal, pos);
      if (end == std::string::npos) {
        return Status::DataLoss("missing template text '" + next_literal +
                                "'");
      }
    }
    std::string text = sentence.substr(pos, end - pos);
    size_t idx = static_cast<size_t>(segment.column);
    const Field& field = schema_.field(idx);
    switch (field.type) {
      case ValueType::kInt: {
        auto parsed = ParseInt(text);
        if (!parsed) {
          return Status::DataLoss("'" + text + "' is not an int for column '" +
                                  field.name + "'");
        }
        row[idx] = Value(*parsed);
        break;
      }
      case ValueType::kDouble: {
        auto parsed = ParseDouble(text);
        if (!parsed) {
          return Status::DataLoss("'" + text +
                                  "' is not a real for column '" +
                                  field.name + "'");
        }
        row[idx] = Value(*parsed);
        break;
      }
      default:
        row[idx] = Value(std::move(text));
    }
    pos = end;
  }
  return row;
}

}  // namespace greater
