#ifndef GREATER_SYNTH_GREAT_SYNTHESIZER_H_
#define GREATER_SYNTH_GREAT_SYNTHESIZER_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "lm/decode_cache.h"
#include "lm/language_model.h"
#include "lm/neural_lm.h"
#include "lm/ngram_lm.h"
#include "synth/sample_report.h"
#include "synth/textual_encoder.h"
#include "tabular/table.h"
#include "tabular/table_stream.h"

namespace greater {

class BatchDecodeEngine;
class ByteReader;
class ByteWriter;

/// The GReaT pipeline (Borisov et al., ICLR 2023), as reproduced here:
/// textual-encode every row, fit an autoregressive language model on the
/// sentences, then sample sentences back and parse them into rows.
///
/// Sampling uses constrained (grammar-guided) decoding — the structural
/// tokens of the sentence grammar are enforced while the *content* tokens
/// are chosen by the model — which plays the role of GReaT's
/// rejection-and-retry loop and keeps invalid-row rates low. Rows that
/// still fail validation (multi-token values recombined into unseen
/// categories, etc.) are rejected and resampled.
class GreatSynthesizer {
 public:
  /// Which language-model substitute backs the synthesizer (see DESIGN.md).
  enum class Backbone {
    kNGram,   ///< fast; used by the full evaluation sweeps
    kNeural,  ///< embedding-based; the closer GPT-2 analogue
  };

  struct Options {
    Backbone backbone = Backbone::kNGram;
    NGramLm::Options ngram;
    NeuralLm::Options neural;
    TextualEncoder::Options encoder;
    /// Sampling temperature for content tokens.
    double temperature = 1.0;
    /// Reject generated categorical values never observed in training.
    bool restrict_to_observed = true;
    /// When true, a column's value tokens are constrained to the tokens
    /// observed in that column (tight grammar). When false — the
    /// GReaT-faithful mode — value tokens may come from ANY column's
    /// observed vocabulary and validity is enforced only by rejection.
    /// This is where Fig. 2's ambiguity bites: a confused "1" borrowed
    /// from another column still *passes* validation whenever the label
    /// sets collide, while semantically enhanced (globally distinct)
    /// categories make such leakage detectable and resampled away.
    bool constrain_values_to_column = true;
    /// With constrain_values_to_column=false, retry budgets can exhaust on
    /// hard rows; when set, the final attempt falls back to the tight
    /// grammar instead of failing the whole Sample call.
    bool fallback_to_constrained = true;
    /// Resampling budget per output row before giving up.
    size_t max_attempts_per_row = 25;
    /// What happens when a row exhausts that budget: strict fails the
    /// whole Sample call (with provenance context); lenient keeps the
    /// rows that succeeded and accounts for the rest in the SampleReport.
    SamplePolicy policy = SamplePolicy::kStrict;
    /// Optional natural-language prior corpus simulating pre-trained
    /// knowledge (see NGramLm). Weight <= 0 disables.
    std::vector<std::string> prior_corpus;
    double prior_weight = 0.25;
    /// Fixed training budget: if the encoded corpus exceeds this many
    /// sentences, a uniform subsample is used. Models the paper's compute
    /// constraint (Sec. 4.1.4 cut the default 1000 epochs to 10 "due to a
    /// large dataset size"): an inflated flattened table burns the budget
    /// on duplicated engaged-subject rows and under-trains everything
    /// else. 0 = unlimited.
    size_t max_training_sequences = 0;
    /// Worker threads for Sample/SampleConditional row generation; also
    /// forwarded to neural-backbone training when it exceeds the neural
    /// options' own num_threads. 1 = serial reference behaviour, which is
    /// bitwise-identical to prior releases; any fixed (seed, num_threads)
    /// pair reproduces itself (see DESIGN.md, "Parallel execution layer").
    size_t num_threads = 1;
    /// Decode-time distribution cache (see DESIGN.md, "Decode cache &
    /// sampling kernels"). Each worker owns a private cache, so parallel
    /// determinism is unchanged; the default kExactReplay mode draws the
    /// same token stream as no cache at all, bit for bit.
    DecodeCacheOptions decode_cache;
    /// Rows decoded in lockstep per batch by the batched decode engine
    /// (see DESIGN.md, "Batched columnar decode"). 1 = the per-row
    /// reference path. Larger batches group lanes that share a (context
    /// window, allow-list, temperature) key so each group costs one model
    /// evaluation per step; every row draws from its own derived Rng
    /// stream, so Sample/SampleConditional output is bitwise-identical at
    /// ANY batch_rows value (and any num_threads).
    size_t batch_rows = 1;
    /// Count shards for out-of-core fitting (FitStreaming): chunks fan out
    /// over an internal thread pool onto this many integer-count
    /// accumulators, folded in fixed shard order — the fitted model is
    /// bitwise-identical at ANY value, so this is a pure throughput knob.
    /// Excluded from the serialized options codec for that reason (two
    /// runs differing only here produce identical artifacts).
    size_t num_fit_shards = 1;
  };

  GreatSynthesizer() : GreatSynthesizer(Options()) {}
  explicit GreatSynthesizer(const Options& options);
  GreatSynthesizer(GreatSynthesizer&&) noexcept;
  GreatSynthesizer& operator=(GreatSynthesizer&&) noexcept;
  ~GreatSynthesizer();

  /// Fits encoder + language model on `train`. One-shot.
  Status Fit(const Table& train, Rng* rng);

  /// Out-of-core Fit: consumes `chunks` (a restartable typed-chunk source,
  /// e.g. FitStage::ChunkSource over a CSV on disk) in two streaming
  /// passes — first collecting each column's distinct values to build the
  /// encoder and observed-value pools, then encoding chunk by chunk into
  /// NGramLm::FitStreaming with options().num_fit_shards accumulators.
  /// Peak memory is bounded by the chunk size plus the model's count
  /// tables; the whole table is never materialized. The fitted synthesizer
  /// is bitwise-identical to Fit on the concatenated chunks (same
  /// encoder, same counts, same samples at a fixed seed), because the
  /// encoder's vocabulary depends only on first-seen distinct values and
  /// the shard counts are exact integers. Requires the n-gram backbone
  /// and max_training_sequences == 0 (a subsample needs the whole corpus).
  Status FitStreaming(const TableChunkSource& chunks, Rng* rng);

  /// Samples `n` synthetic rows. Under SamplePolicy::kLenient the result
  /// may hold fewer than `n` rows; `report` (optional) receives the
  /// per-call counts (merged into whatever it already holds) and always
  /// reconciles: rows_emitted + rows_exhausted == rows_requested.
  Result<Table> Sample(size_t n, Rng* rng,
                       SampleReport* report = nullptr) const;

  /// Sample with an explicit degradation policy overriding
  /// options().policy — the recovery supervisor's circuit-open path uses
  /// this to fall back to lenient sampling without reconfiguring the
  /// synthesizer. Otherwise identical to Sample.
  Result<Table> SampleWithPolicy(size_t n, SamplePolicy policy, Rng* rng,
                                 SampleReport* report = nullptr) const;

  /// Samples one row per row of `conditions`, forcing the condition
  /// columns (a subset of the training schema) to the given values and
  /// letting the model generate the rest — conditional generation via
  /// constrained decoding. This is how the relational synthesizer
  /// conditions child rows on parent observations. Lenient mode skips
  /// condition rows whose generation exhausts the attempt budget.
  Result<Table> SampleConditional(const Table& conditions, Rng* rng,
                                  SampleReport* report = nullptr) const;

  /// SampleConditional with an explicit policy override (see
  /// SampleWithPolicy).
  Result<Table> SampleConditionalWithPolicy(
      const Table& conditions, SamplePolicy policy, Rng* rng,
      SampleReport* report = nullptr) const;

  /// Samples a single row, optionally with forced column values.
  Result<Row> SampleRow(Rng* rng,
                        const std::map<std::string, Value>* forced =
                            nullptr) const;

  /// Samples `n` independent rows on `pool`'s workers. One base value is
  /// drawn from `rng` (advancing it by the same amount regardless of
  /// worker count or batch size) and row `i` draws from a private stream
  /// seeded with Rng::DeriveStreamSeed(base, i), so for a fixed seed the
  /// output is identical at every (worker count, batch_rows) combination.
  /// With a null pool or a single worker rows are produced serially; this
  /// is exactly Sample.
  Result<Table> SampleRows(size_t n, Rng* rng, ThreadPool* pool,
                           SampleReport* report = nullptr) const;

  /// The stream-base derivation every Sample* call makes exactly once
  /// (advancing `rng` by two engine draws): row i of that call then
  /// samples from Rng(Rng::DeriveStreamSeed(base, i)). Exposed so an
  /// external scheduler — the serving layer packing rows of many requests
  /// into shared decode batches — can reproduce a request's rows
  /// bitwise-identically to `Rng r(seed); SampleRows(n, &r, ...)` without
  /// going through SampleRows itself.
  static uint64_t DeriveSampleBase(Rng* rng);

  bool fitted() const { return lm_ != nullptr && lm_->fitted(); }
  const TextualEncoder& encoder() const { return *encoder_; }
  const LanguageModel& lm() const { return *lm_; }
  const Options& options() const { return options_; }

  /// Cumulative sampling diagnostics across every Sample* call.
  const SampleReport& stats() const { return stats_; }

  /// Persistence of the whole trained bundle (artifact kind
  /// "greater.great_synthesizer"): options, the encoder and language model
  /// as nested artifacts, and the observed-value pools. Requires fitted().
  /// A loaded synthesizer draws the exact token stream of the saved one —
  /// Save -> Load -> Sample(seed) is bitwise-identical to Sample(seed) on
  /// the in-memory instance, for both backbones (grammars and allow-list
  /// ids are rebuilt in Fit order; observed pools are stored sorted).
  Result<std::string> SerializeBinary() const;
  Status DeserializeBinary(std::string_view bytes);
  Status Save(const std::string& path) const;
  Status Load(const std::string& path);

  /// Binary codec for Options, shared by the synthesizer bundle and the
  /// pipeline checkpoint fingerprint (two configurations hash equal iff
  /// these bytes are equal).
  static void AppendOptionsTo(const Options& options, ByteWriter* w);
  static Status ReadOptionsFrom(ByteReader* r, Options* options);

  /// Perplexity of the fitted model on a held-out table (encoded once,
  /// schema order).
  Result<double> EvaluatePerplexity(const Table& held_out) const;

 private:
  friend class BatchDecodeEngine;

  /// Hard cap on tokens per generated value; guards against degenerate
  /// loops when the model keeps emitting value tokens. Shared by the
  /// per-row reference decoder and the batched engine, which must agree
  /// on it bit for bit.
  static constexpr size_t kMaxValueTokens = 24;

  /// Reusable per-sampler buffers: one allocation set per worker (or per
  /// Sample call) instead of one per row attempt. Owns the worker's
  /// private DecodeCache — caches are never shared across workers, so the
  /// parallel determinism contract is untouched — and, when batch_rows
  /// > 1, the worker's lockstep batch engine.
  struct SamplerWorkspace {
    std::vector<int> forced_index;
    std::vector<Value> forced_values;
    TokenSequence context;
    std::vector<char> emitted;
    std::vector<TokenId> allowed_names;
    DecodeWorkspace decode;
    std::unique_ptr<DecodeCache> cache;
    std::unique_ptr<BatchDecodeEngine> batch;
  };

  /// Allow-list variants for one value grammar, interned once at Fit: the
  /// raw observed-token list plus the terminator-admitted copies used from
  /// the second value token onward. Prebuilding them removes the per-step
  /// copy + sorted-insert the sampler used to do.
  struct ValueGrammar {
    std::vector<TokenId> values;
    std::vector<TokenId> with_comma;
    std::vector<TokenId> with_eos;
    AllowListId values_id = kNoAllowList;
    AllowListId with_comma_id = kNoAllowList;
    AllowListId with_eos_id = kNoAllowList;
  };

  /// Prepares a sampler workspace: constructs its private DecodeCache when
  /// enabled (idempotent — an existing cache is kept warm) and sizes the
  /// neural hidden-state cache.
  void InitWorkspace(SamplerWorkspace* ws) const;

  /// One constrained draw, routed through the workspace's DecodeCache when
  /// present (kExactReplay keeps the token stream bitwise-identical to the
  /// direct SampleNext call).
  TokenId SampleToken(const TokenSequence& context,
                      const std::vector<TokenId>& allowed,
                      AllowListId allow_id, Rng* rng,
                      SamplerWorkspace* ws) const;

  /// SampleRow body. Assumes fitted; accumulates diagnostics into `stats`
  /// (never the shared `stats_` directly, so parallel workers can pass
  /// private reports). `parent_span_id` is the observability span this
  /// row's "synth.row" span nests under — pool workers cannot see the
  /// caller's thread-local span stack, so the parent travels explicitly.
  Result<Row> SampleRowImpl(Rng* rng,
                            const std::map<std::string, Value>* forced,
                            SamplerWorkspace* ws, SampleReport* stats,
                            uint64_t parent_span_id) const;

  /// Shared core of Sample / SampleConditional / SampleRows. `conditions`
  /// null -> unconditional; row i otherwise forces conditions row i.
  /// Serial (drawing from `rng` directly) unless `pool` has > 1 worker
  /// and n > 1. `policy` is the effective degradation policy for this
  /// call (usually options_.policy; the supervisor may override).
  Result<Table> SampleMany(size_t n, const Table* conditions, Rng* rng,
                           ThreadPool* pool, SampleReport* report,
                           SamplePolicy policy) const;

  /// Observed display strings of one column: a hash set for O(1) validity
  /// checks plus the same strings sorted ascending, so the last-resort
  /// snap draw indexes a container whose order survives a Save/Load
  /// rebuild (unordered_set iteration order would not).
  struct ObservedColumn {
    std::unordered_set<std::string> set;
    std::vector<std::string> sorted;

    void Insert(const std::string& value) {
      if (set.insert(value).second) sorted.push_back(value);
    }
    void SortPool() { std::sort(sorted.begin(), sorted.end()); }
  };

  /// Rebuilds the derived sampling state — the value-token union, the
  /// per-column and free-mode grammars, and their interned allow-list ids
  /// — from the encoder. Called at the end of Fit and of Load; the
  /// interning order is identical in both, which is what keeps a loaded
  /// synthesizer's decode-cache keys (and token stream) equal to the
  /// saved one's.
  void BuildGrammars();

  Options options_;
  std::unique_ptr<TextualEncoder> encoder_;
  std::unique_ptr<LanguageModel> lm_;
  /// Observed display strings per column, for validity checking and
  /// deterministic last-resort snapping.
  std::vector<ObservedColumn> observed_values_;
  /// Union of every column's value tokens (free-value decoding mode).
  std::vector<TokenId> all_value_tokens_;
  /// Per-column tight grammars plus the free-mode union grammar, interned
  /// into the encoder's AllowListInterner at Fit.
  std::vector<ValueGrammar> column_grammars_;
  ValueGrammar free_grammar_;
  /// Serial-path workspace, persistent across Sample* calls so the decode
  /// cache stays warm between them (a repeated SampleConditional over many
  /// parents reuses one cache). Cache contents never influence output in
  /// either mode, so reuse cannot perturb determinism. Parallel workers
  /// get fresh private workspaces per call instead — like stats_, this
  /// member makes concurrent Sample* calls on one synthesizer unsupported.
  mutable SamplerWorkspace serial_ws_;
  mutable SampleReport stats_;
};

}  // namespace greater

#endif  // GREATER_SYNTH_GREAT_SYNTHESIZER_H_
