#include "synth/textual_encoder.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "common/artifact_io.h"
#include "common/strings.h"
#include "tabular/table_serde.h"

namespace greater {

Result<TextualEncoder> TextualEncoder::Build(
    const Table& table, const Options& options,
    const std::vector<std::string>& extra_corpus) {
  if (table.num_columns() == 0) {
    return Status::Invalid("cannot build an encoder for a zero-column table");
  }
  TextualEncoder encoder;
  encoder.options_ = options;
  encoder.schema_ = table.schema();

  encoder.is_token_ = encoder.vocab_.AddToken("is");
  encoder.comma_token_ = encoder.vocab_.AddToken(",");

  encoder.columns_.resize(table.num_columns());
  encoder.value_token_sets_.resize(table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    EncodedColumn& col = encoder.columns_[c];
    col.name = table.schema().field(c).name;
    // Column names must stay single tokens so decoding is unambiguous.
    auto name_tokens = encoder.word_tokenizer_.Tokenize(col.name);
    if (name_tokens.size() != 1) {
      return Status::Invalid("column name '" + col.name +
                             "' does not tokenize to a single token; use "
                             "underscores instead of spaces");
    }
    col.name_token = encoder.vocab_.AddToken(name_tokens[0]);
  }
  // Two passes so duplicate checks above run before value tokens intern.
  for (size_t c = 0; c < table.num_columns(); ++c) {
    EncodedColumn& col = encoder.columns_[c];
    auto& token_set = encoder.value_token_sets_[c];
    for (size_t r = 0; r < table.num_rows(); ++r) {
      std::string text = table.at(r, c).ToDisplayString();
      for (const auto& word : encoder.word_tokenizer_.Tokenize(text)) {
        if (word == ",") {
          return Status::Invalid("value '" + text + "' in column '" +
                                 col.name +
                                 "' contains the ',' separator");
        }
        TokenId id = encoder.vocab_.AddToken(word);
        if (token_set.insert(id).second) col.value_tokens.push_back(id);
      }
    }
    if (col.value_tokens.empty()) {
      return Status::Invalid("column '" + col.name +
                             "' has no non-empty values to learn from");
    }
    // Kept strictly ascending: the synthesizer's constrained decoder
    // requires sorted allow-lists for its no-copy fast path.
    std::sort(col.value_tokens.begin(), col.value_tokens.end());
    col.allow_list_id = encoder.allow_lists_.Intern(col.value_tokens);
  }
  for (const auto& line : extra_corpus) {
    for (const auto& word : encoder.word_tokenizer_.Tokenize(line)) {
      encoder.vocab_.AddToken(word);
    }
  }
  return encoder;
}

std::string TextualEncoder::RenderSentence(
    const Row& row, const std::vector<size_t>& order) const {
  std::string out;
  for (size_t k = 0; k < order.size(); ++k) {
    size_t c = order[k];
    if (k > 0) out += ", ";
    out += columns_[c].name;
    out += " is ";
    out += row[c].ToDisplayString();
  }
  return out;
}

TokenSequence TextualEncoder::EncodeRow(
    const Row& row, const std::vector<size_t>& order) const {
  TokenSequence out;
  for (size_t k = 0; k < order.size(); ++k) {
    size_t c = order[k];
    if (k > 0) out.push_back(comma_token_);
    out.push_back(columns_[c].name_token);
    out.push_back(is_token_);
    std::string text = row[c].ToDisplayString();
    for (const auto& word : word_tokenizer_.Tokenize(text)) {
      out.push_back(vocab_.IdOf(word));
    }
  }
  return out;
}

Result<std::vector<TokenSequence>> TextualEncoder::EncodeTable(
    const Table& table, Rng* rng) const {
  std::vector<size_t> order;
  return EncodeTableWithOrderState(table, rng, &order);
}

Result<std::vector<TokenSequence>> TextualEncoder::EncodeTableWithOrderState(
    const Table& table, Rng* rng, std::vector<size_t>* order) const {
  if (!(table.schema() == schema_)) {
    return Status::Invalid("EncodeTable: table schema differs from the "
                           "schema this encoder was built for");
  }
  std::vector<TokenSequence> out;
  size_t copies = std::max<size_t>(1, options_.permutations_per_row);
  out.reserve(table.num_rows() * copies);
  if (order->size() != table.num_columns()) {
    order->resize(table.num_columns());
    std::iota(order->begin(), order->end(), 0);
  }
  for (size_t r = 0; r < table.num_rows(); ++r) {
    Row row = table.GetRow(r);
    for (size_t k = 0; k < copies; ++k) {
      if (options_.permute_features) rng->Shuffle(order);
      out.push_back(EncodeRow(row, *order));
    }
  }
  return out;
}

TokenSequence TextualEncoder::EncodeTextLine(const std::string& line) const {
  TokenSequence out;
  for (const auto& word : word_tokenizer_.Tokenize(line)) {
    out.push_back(vocab_.IdOf(word));
  }
  return out;
}

Result<Value> TextualEncoder::ParseValue(size_t column,
                                         const std::string& text) const {
  const Field& field = schema_.field(column);
  switch (field.type) {
    case ValueType::kInt: {
      auto parsed = ParseInt(text);
      if (!parsed) {
        return Status::DataLoss("'" + text + "' is not an integer (column '" +
                                field.name + "')");
      }
      return Value(*parsed);
    }
    case ValueType::kDouble: {
      auto parsed = ParseDouble(text);
      if (!parsed) {
        return Status::DataLoss("'" + text + "' is not a real (column '" +
                                field.name + "')");
      }
      return Value(*parsed);
    }
    default:
      return Value(text);
  }
}

Result<Row> TextualEncoder::DecodeTokens(const TokenSequence& tokens) const {
  Row row;
  DecodeScratch scratch;
  GREATER_RETURN_NOT_OK(
      DecodeTokensInto(tokens.data(), tokens.size(), &row, &scratch));
  return row;
}

Status TextualEncoder::DecodeTokensInto(const TokenId* tokens, size_t count,
                                        Row* row,
                                        DecodeScratch* scratch) const {
  row->assign(schema_.num_fields(), Value::Null());
  scratch->assigned.assign(schema_.num_fields(), 0);

  // Map name tokens back to column indices.
  auto column_of = [&](TokenId id) -> int {
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (columns_[c].name_token == id) return static_cast<int>(c);
    }
    return -1;
  };

  size_t i = 0;
  while (i < count) {
    int col = column_of(tokens[i]);
    if (col < 0) {
      return Status::DataLoss("expected a column name, got '" +
                              vocab_.TokenOf(tokens[i]) + "'");
    }
    if (scratch->assigned[static_cast<size_t>(col)]) {
      return Status::DataLoss("column '" + columns_[static_cast<size_t>(col)].name +
                              "' assigned twice");
    }
    ++i;
    if (i >= count || tokens[i] != is_token_) {
      return Status::DataLoss("expected 'is' after column name '" +
                              columns_[static_cast<size_t>(col)].name + "'");
    }
    ++i;
    // Words join with single spaces, exactly as Join(words, " ") renders.
    scratch->text.clear();
    size_t words = 0;
    while (i < count && tokens[i] != comma_token_) {
      if (words > 0) scratch->text += ' ';
      scratch->text += vocab_.TokenOf(tokens[i]);
      ++words;
      ++i;
    }
    if (words == 0) {
      return Status::DataLoss("empty value for column '" +
                              columns_[static_cast<size_t>(col)].name + "'");
    }
    if (i < count) ++i;  // skip the comma
    GREATER_ASSIGN_OR_RETURN(
        Value value, ParseValue(static_cast<size_t>(col), scratch->text));
    (*row)[static_cast<size_t>(col)] = std::move(value);
    scratch->assigned[static_cast<size_t>(col)] = 1;
  }
  for (size_t c = 0; c < scratch->assigned.size(); ++c) {
    if (!scratch->assigned[c]) {
      return Status::DataLoss("column '" + columns_[c].name +
                              "' missing from generated row");
    }
  }
  return Status::OK();
}

bool TextualEncoder::IsObservedValueToken(size_t column, TokenId token) const {
  return value_token_sets_[column].count(token) > 0;
}

std::string TextualEncoder::SerializeBinary() const {
  ArtifactWriter doc("greater.textual_encoder", 1);
  {
    ByteWriter w;
    w.PutU64(options_.permutations_per_row);
    w.PutBool(options_.permute_features);
    w.PutU32(static_cast<uint32_t>(is_token_));
    w.PutU32(static_cast<uint32_t>(comma_token_));
    doc.AddChunk("options", std::move(w).Take());
  }
  {
    ByteWriter w;
    AppendSchema(schema_, &w);
    doc.AddChunk("schema", std::move(w).Take());
  }
  doc.AddChunk("vocab", vocab_.SerializeBinary());
  {
    ByteWriter w;
    w.PutU32(static_cast<uint32_t>(columns_.size()));
    for (const EncodedColumn& col : columns_) {
      w.PutString(col.name);
      w.PutU32(static_cast<uint32_t>(col.name_token));
      w.PutU32(static_cast<uint32_t>(col.value_tokens.size()));
      for (TokenId id : col.value_tokens) {
        w.PutU32(static_cast<uint32_t>(id));
      }
    }
    doc.AddChunk("columns", std::move(w).Take());
  }
  return doc.Finish();
}

Status TextualEncoder::DeserializeBinary(std::string_view bytes) {
  GREATER_ASSIGN_OR_RETURN(
      ArtifactReader doc,
      ArtifactReader::Parse(std::string(bytes), "greater.textual_encoder",
                            1));
  TextualEncoder enc;
  {
    GREATER_ASSIGN_OR_RETURN(std::string_view payload, doc.Chunk("options"));
    ByteReader r(payload);
    GREATER_RETURN_NOT_OK(r.GetU64(&enc.options_.permutations_per_row));
    GREATER_RETURN_NOT_OK(r.GetBool(&enc.options_.permute_features));
    uint32_t is_token = 0, comma_token = 0;
    GREATER_RETURN_NOT_OK(r.GetU32(&is_token));
    GREATER_RETURN_NOT_OK(r.GetU32(&comma_token));
    enc.is_token_ = static_cast<TokenId>(is_token);
    enc.comma_token_ = static_cast<TokenId>(comma_token);
    GREATER_RETURN_NOT_OK(r.ExpectEnd());
  }
  {
    GREATER_ASSIGN_OR_RETURN(std::string_view payload, doc.Chunk("schema"));
    ByteReader r(payload);
    GREATER_RETURN_NOT_OK_CTX(ReadSchema(&r, &enc.schema_),
                              "encoder schema");
    GREATER_RETURN_NOT_OK(r.ExpectEnd());
  }
  {
    GREATER_ASSIGN_OR_RETURN(std::string_view payload, doc.Chunk("vocab"));
    GREATER_RETURN_NOT_OK_CTX(enc.vocab_.DeserializeBinary(payload),
                              "encoder vocabulary");
  }
  {
    GREATER_ASSIGN_OR_RETURN(std::string_view payload, doc.Chunk("columns"));
    ByteReader r(payload);
    uint32_t num_columns = 0;
    GREATER_RETURN_NOT_OK(r.GetU32(&num_columns));
    if (num_columns != enc.schema_.num_fields()) {
      return Status::DataLoss("corrupt encoder: " +
                              std::to_string(num_columns) +
                              " columns for a schema of " +
                              std::to_string(enc.schema_.num_fields()));
    }
    enc.columns_.resize(num_columns);
    enc.value_token_sets_.resize(num_columns);
    for (uint32_t c = 0; c < num_columns; ++c) {
      EncodedColumn& col = enc.columns_[c];
      GREATER_RETURN_NOT_OK(r.GetString(&col.name));
      uint32_t name_token = 0;
      GREATER_RETURN_NOT_OK(r.GetU32(&name_token));
      col.name_token = static_cast<TokenId>(name_token);
      uint32_t num_tokens = 0;
      GREATER_RETURN_NOT_OK(r.GetU32(&num_tokens));
      col.value_tokens.reserve(num_tokens);
      for (uint32_t i = 0; i < num_tokens; ++i) {
        uint32_t id = 0;
        GREATER_RETURN_NOT_OK(r.GetU32(&id));
        col.value_tokens.push_back(static_cast<TokenId>(id));
        enc.value_token_sets_[c].insert(static_cast<TokenId>(id));
      }
      if (!std::is_sorted(col.value_tokens.begin(),
                          col.value_tokens.end())) {
        return Status::DataLoss("corrupt encoder: value tokens of column '" +
                                col.name + "' are not sorted");
      }
      // Re-intern in column order — the same order Build used — so every
      // column's allow-list id matches the saved encoder's.
      col.allow_list_id = enc.allow_lists_.Intern(col.value_tokens);
    }
    GREATER_RETURN_NOT_OK(r.ExpectEnd());
  }
  *this = std::move(enc);
  return Status::OK();
}

Status TextualEncoder::Save(const std::string& path) const {
  return AtomicWriteFile(path, SerializeBinary())
      .WithContext("saving textual encoder to '" + path + "'");
}

Status TextualEncoder::Load(const std::string& path) {
  GREATER_ASSIGN_OR_RETURN_CTX(std::string bytes, ReadFileBytes(path),
                               "loading textual encoder from '" + path + "'");
  return DeserializeBinary(bytes)
      .WithContext("loading textual encoder from '" + path + "'");
}

}  // namespace greater
