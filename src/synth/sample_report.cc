#include "synth/sample_report.h"

#include <cstdio>

namespace greater {

const char* SamplePolicyToString(SamplePolicy policy) {
  switch (policy) {
    case SamplePolicy::kStrict: return "strict";
    case SamplePolicy::kLenient: return "lenient";
  }
  return "unknown";
}

double SampleReport::RejectionRate() const {
  if (attempts == 0) return 0.0;
  return static_cast<double>(total_rejected() + injected_faults) /
         static_cast<double>(attempts);
}

void SampleReport::Merge(const SampleReport& other) {
  rows_requested += other.rows_requested;
  rows_emitted += other.rows_emitted;
  rows_exhausted += other.rows_exhausted;
  attempts += other.attempts;
  rejected_invalid_value += other.rejected_invalid_value;
  rejected_decode_failure += other.rejected_decode_failure;
  rejected_mid_row += other.rejected_mid_row;
  injected_faults += other.injected_faults;
  fallback_grammar_uses += other.fallback_grammar_uses;
  snapped_cells += other.snapped_cells;
}

SampleReport SampleReport::DeltaSince(const SampleReport& before) const {
  SampleReport delta;
  delta.rows_requested = rows_requested - before.rows_requested;
  delta.rows_emitted = rows_emitted - before.rows_emitted;
  delta.rows_exhausted = rows_exhausted - before.rows_exhausted;
  delta.attempts = attempts - before.attempts;
  delta.rejected_invalid_value =
      rejected_invalid_value - before.rejected_invalid_value;
  delta.rejected_decode_failure =
      rejected_decode_failure - before.rejected_decode_failure;
  delta.rejected_mid_row = rejected_mid_row - before.rejected_mid_row;
  delta.injected_faults = injected_faults - before.injected_faults;
  delta.fallback_grammar_uses =
      fallback_grammar_uses - before.fallback_grammar_uses;
  delta.snapped_cells = snapped_cells - before.snapped_cells;
  return delta;
}

std::string SampleReport::ToString() const {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "rows %zu/%zu emitted (%zu exhausted), attempts %zu, "
                "rejected %zu (invalid %zu, decode %zu, mid-row %zu, "
                "faults %zu), fallback %zu, snapped %zu, rejection-rate "
                "%.3f",
                rows_emitted, rows_requested, rows_exhausted, attempts,
                total_rejected(), rejected_invalid_value,
                rejected_decode_failure, rejected_mid_row, injected_faults,
                fallback_grammar_uses, snapped_cells, RejectionRate());
  return std::string(buffer);
}

}  // namespace greater
