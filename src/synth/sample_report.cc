#include "synth/sample_report.h"

#include <cstdio>

#include "obs/metrics.h"

namespace greater {
namespace {

// Registry counters mirroring the SampleReport fields. Looked up once;
// the objects stay valid across MetricsRegistry::Reset().
struct SynthCounters {
  Counter* rows_requested;
  Counter* rows_emitted;
  Counter* rows_degraded;
  Counter* attempts;
  Counter* rejected_invalid_value;
  Counter* rejected_decode_failure;
  Counter* rejected_mid_row;
  Counter* fault_trips;
  Counter* fallback_grammar_uses;
  Counter* snapped_cells;
  SynthCounters() {
    MetricsRegistry& registry = MetricsRegistry::Global();
    rows_requested = &registry.GetCounter("synth.rows_requested");
    rows_emitted = &registry.GetCounter("synth.rows_emitted");
    rows_degraded = &registry.GetCounter("synth.rows_degraded");
    attempts = &registry.GetCounter("synth.attempts");
    rejected_invalid_value =
        &registry.GetCounter("synth.rejected_invalid_value");
    rejected_decode_failure =
        &registry.GetCounter("synth.rejected_decode_failure");
    rejected_mid_row = &registry.GetCounter("synth.rejected_mid_row");
    fault_trips = &registry.GetCounter("synth.fault_trips");
    fallback_grammar_uses =
        &registry.GetCounter("synth.fallback_grammar_uses");
    snapped_cells = &registry.GetCounter("synth.snapped_cells");
  }
};

const SynthCounters& GetSynthCounters() {
  static const SynthCounters counters;
  return counters;
}

}  // namespace

const char* SamplePolicyToString(SamplePolicy policy) {
  switch (policy) {
    case SamplePolicy::kStrict: return "strict";
    case SamplePolicy::kLenient: return "lenient";
  }
  return "unknown";
}

double SampleReport::RejectionRate() const {
  if (attempts == 0) return 0.0;
  return static_cast<double>(total_rejected() + injected_faults) /
         static_cast<double>(attempts);
}

void SampleReport::Merge(const SampleReport& other) {
  rows_requested += other.rows_requested;
  rows_emitted += other.rows_emitted;
  rows_exhausted += other.rows_exhausted;
  attempts += other.attempts;
  rejected_invalid_value += other.rejected_invalid_value;
  rejected_decode_failure += other.rejected_decode_failure;
  rejected_mid_row += other.rejected_mid_row;
  injected_faults += other.injected_faults;
  fallback_grammar_uses += other.fallback_grammar_uses;
  snapped_cells += other.snapped_cells;
}

SampleReport SampleReport::DeltaSince(const SampleReport& before) const {
  SampleReport delta;
  delta.rows_requested = rows_requested - before.rows_requested;
  delta.rows_emitted = rows_emitted - before.rows_emitted;
  delta.rows_exhausted = rows_exhausted - before.rows_exhausted;
  delta.attempts = attempts - before.attempts;
  delta.rejected_invalid_value =
      rejected_invalid_value - before.rejected_invalid_value;
  delta.rejected_decode_failure =
      rejected_decode_failure - before.rejected_decode_failure;
  delta.rejected_mid_row = rejected_mid_row - before.rejected_mid_row;
  delta.injected_faults = injected_faults - before.injected_faults;
  delta.fallback_grammar_uses =
      fallback_grammar_uses - before.fallback_grammar_uses;
  delta.snapped_cells = snapped_cells - before.snapped_cells;
  return delta;
}

void SampleReport::ExportToMetrics() const {
  const SynthCounters& counters = GetSynthCounters();
  counters.rows_requested->Increment(rows_requested);
  counters.rows_emitted->Increment(rows_emitted);
  counters.rows_degraded->Increment(rows_exhausted);
  counters.attempts->Increment(attempts);
  counters.rejected_invalid_value->Increment(rejected_invalid_value);
  counters.rejected_decode_failure->Increment(rejected_decode_failure);
  counters.rejected_mid_row->Increment(rejected_mid_row);
  counters.fault_trips->Increment(injected_faults);
  counters.fallback_grammar_uses->Increment(fallback_grammar_uses);
  counters.snapped_cells->Increment(snapped_cells);
}

std::string SampleReport::ToString() const {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "rows %zu/%zu emitted (%zu exhausted), attempts %zu, "
                "rejected %zu (invalid %zu, decode %zu, mid-row %zu, "
                "faults %zu), fallback %zu, snapped %zu, rejection-rate "
                "%.3f",
                rows_emitted, rows_requested, rows_exhausted, attempts,
                total_rejected(), rejected_invalid_value,
                rejected_decode_failure, rejected_mid_row, injected_faults,
                fallback_grammar_uses, snapped_cells, RejectionRate());
  return std::string(buffer);
}

}  // namespace greater
