#include "synth/relational_synthesizer.h"

#include <algorithm>
#include <utility>

#include "common/artifact_io.h"
#include "tabular/table_serde.h"

namespace greater {

namespace {
constexpr char kRelationalKind[] = "greater.relational_synthesizer";
constexpr uint32_t kRelationalVersion = 1;
}  // namespace

RelationalSynthesizer::RelationalSynthesizer(const Options& options)
    : options_(options),
      parent_model_(options.parent),
      child_model_(options.child) {}

Status RelationalSynthesizer::Fit(const Table& parent, const Table& child,
                                  const std::string& key_column, Rng* rng) {
  if (fitted_) {
    return Status::FailedPrecondition("RelationalSynthesizer already fitted");
  }
  if (!parent.schema().HasField(key_column) ||
      !child.schema().HasField(key_column)) {
    return Status::Invalid("key column '" + key_column +
                           "' must exist in both tables");
  }
  key_column_ = key_column;
  parent_schema_ = parent.schema();
  child_schema_ = child.schema();

  // Parent: one row per key.
  GREATER_ASSIGN_OR_RETURN(auto parent_groups,
                           parent.GroupByColumn(key_column));
  for (const auto& [key, rows] : parent_groups) {
    if (rows.size() != 1) {
      return Status::Invalid("parent table has " + std::to_string(rows.size()) +
                             " rows for key '" + key.ToDisplayString() + "'");
    }
  }
  GREATER_ASSIGN_OR_RETURN(auto child_groups, child.GroupByColumn(key_column));
  for (const auto& [key, rows] : child_groups) {
    if (parent_groups.count(key) == 0) {
      return Status::Invalid("child key '" + key.ToDisplayString() +
                             "' missing from parent table");
    }
  }

  for (const auto& field : parent_schema_.fields()) {
    if (field.name != key_column_) {
      parent_feature_columns_.push_back(field.name);
    }
  }
  for (const auto& field : child_schema_.fields()) {
    if (field.name != key_column_) {
      if (parent_schema_.HasField(field.name)) {
        return Status::Invalid("column '" + field.name +
                               "' exists in both parent and child");
      }
      child_feature_columns_.push_back(field.name);
    }
  }
  if (parent_feature_columns_.empty() || child_feature_columns_.empty()) {
    return Status::Invalid("both tables need at least one non-key column");
  }

  // Fit the parent model on parent features only.
  GREATER_ASSIGN_OR_RETURN(Table parent_features,
                           parent.Select(parent_feature_columns_));
  GREATER_RETURN_NOT_OK_CTX(parent_model_.Fit(parent_features, rng),
                            "fitting the parent model");

  // Build the joined training table for the child model: each child row
  // extended with its parent's features.
  std::vector<std::string> joined_names = parent_feature_columns_;
  joined_names.insert(joined_names.end(), child_feature_columns_.begin(),
                      child_feature_columns_.end());
  std::vector<Field> joined_fields;
  for (const auto& name : joined_names) {
    const Schema& source =
        parent_schema_.HasField(name) ? parent_schema_ : child_schema_;
    GREATER_ASSIGN_OR_RETURN(size_t idx, source.FieldIndex(name));
    joined_fields.push_back(source.field(idx));
  }
  GREATER_ASSIGN_OR_RETURN(Schema joined_schema,
                           Schema::Make(std::move(joined_fields)));
  Table joined(joined_schema);

  GREATER_ASSIGN_OR_RETURN(size_t child_key_idx,
                           child_schema_.FieldIndex(key_column_));
  // Cache parent feature rows keyed by key value.
  std::map<Value, Row> parent_rows;
  GREATER_ASSIGN_OR_RETURN(size_t parent_key_idx,
                           parent_schema_.FieldIndex(key_column_));
  for (size_t r = 0; r < parent.num_rows(); ++r) {
    Row features;
    for (const auto& name : parent_feature_columns_) {
      size_t idx = parent_schema_.FieldIndex(name).ValueOrDie();
      features.push_back(parent.at(r, idx));
    }
    parent_rows[parent.at(r, parent_key_idx)] = std::move(features);
  }
  for (size_t r = 0; r < child.num_rows(); ++r) {
    Row row = parent_rows[child.at(r, child_key_idx)];
    for (const auto& name : child_feature_columns_) {
      size_t idx = child_schema_.FieldIndex(name).ValueOrDie();
      row.push_back(child.at(r, idx));
    }
    GREATER_RETURN_NOT_OK(joined.AppendRow(std::move(row)));
  }
  GREATER_RETURN_NOT_OK_CTX(child_model_.Fit(joined, rng),
                            "fitting the child model");

  child_counts_.clear();
  for (const auto& [key, rows] : parent_groups) {
    auto it = child_groups.find(key);
    child_counts_.push_back(it == child_groups.end() ? 0 : it->second.size());
  }
  std::sort(child_counts_.begin(), child_counts_.end());
  fitted_ = true;
  return Status::OK();
}

Result<RelationalSample> RelationalSynthesizer::Sample(
    size_t num_parents, Rng* rng, SampleReport* report) const {
  if (!fitted_) {
    return Status::FailedPrecondition("Sample before Fit");
  }
  // Synthetic parent features. Under a lenient parent-model policy this
  // may hold fewer than num_parents rows; the survivors still get
  // children below.
  GREATER_ASSIGN_OR_RETURN_CTX(
      Table parent_features, parent_model_.Sample(num_parents, rng, report),
      "sampling parent rows");

  // Assemble output parent table (key column + features, keys synthetic).
  GREATER_ASSIGN_OR_RETURN(size_t parent_key_idx,
                           parent_schema_.FieldIndex(key_column_));
  Table parent_out(parent_schema_);
  for (size_t r = 0; r < parent_features.num_rows(); ++r) {
    Value key(options_.synthetic_key_prefix + std::to_string(r));
    if (parent_schema_.field(parent_key_idx).type == ValueType::kInt) {
      key = Value(static_cast<int64_t>(r));
    }
    Row parent_row(parent_schema_.num_fields(), Value::Null());
    parent_row[parent_key_idx] = key;
    for (size_t c = 0; c < parent_feature_columns_.size(); ++c) {
      size_t idx =
          parent_schema_.FieldIndex(parent_feature_columns_[c]).ValueOrDie();
      parent_row[idx] = parent_features.at(r, c);
    }
    GREATER_RETURN_NOT_OK(parent_out.AppendRow(std::move(parent_row)));
  }
  GREATER_ASSIGN_OR_RETURN(Table child_out,
                           SampleChildren(parent_out, rng, report));
  return RelationalSample{std::move(parent_out), std::move(child_out)};
}

Result<Table> RelationalSynthesizer::SampleChildren(
    const Table& parent, Rng* rng, SampleReport* report) const {
  if (!fitted_) {
    return Status::FailedPrecondition("SampleChildren before Fit");
  }
  if (!(parent.schema() == parent_schema_)) {
    return Status::Invalid(
        "SampleChildren: parent schema differs from the schema this "
        "synthesizer was fitted on");
  }
  GREATER_ASSIGN_OR_RETURN(size_t parent_key_idx,
                           parent_schema_.FieldIndex(key_column_));
  GREATER_ASSIGN_OR_RETURN(size_t child_key_idx,
                           child_schema_.FieldIndex(key_column_));
  GREATER_ASSIGN_OR_RETURN(Table parent_features,
                           parent.Select(parent_feature_columns_));

  Table child_out(child_schema_);
  for (size_t r = 0; r < parent.num_rows(); ++r) {
    const Value& key = parent.at(r, parent_key_idx);
    size_t count = child_counts_.empty()
                       ? 0
                       : child_counts_[rng->Index(child_counts_.size())];
    if (count == 0) continue;
    Table conditions(parent_features.schema());
    for (size_t k = 0; k < count; ++k) {
      GREATER_RETURN_NOT_OK(conditions.AppendRow(parent_features.GetRow(r)));
    }
    GREATER_ASSIGN_OR_RETURN_CTX(
        Table joined_rows,
        child_model_.SampleConditional(conditions, rng, report),
        "sampling children of synthetic parent '" + key.ToDisplayString() +
            "'");
    for (size_t k = 0; k < joined_rows.num_rows(); ++k) {
      Row child_row(child_schema_.num_fields(), Value::Null());
      child_row[child_key_idx] = key;
      for (const auto& name : child_feature_columns_) {
        size_t dst = child_schema_.FieldIndex(name).ValueOrDie();
        size_t src = joined_rows.schema().FieldIndex(name).ValueOrDie();
        child_row[dst] = joined_rows.at(k, src);
      }
      GREATER_RETURN_NOT_OK(child_out.AppendRow(std::move(child_row)));
    }
  }
  return child_out;
}

Result<std::string> RelationalSynthesizer::SerializeBinary() const {
  if (!fitted_) {
    return Status::FailedPrecondition(
        "cannot serialize an unfitted relational synthesizer");
  }
  ArtifactWriter doc(kRelationalKind, kRelationalVersion);
  {
    ByteWriter w;
    w.PutString(options_.synthetic_key_prefix);
    w.PutString(key_column_);
    w.PutU32(static_cast<uint32_t>(parent_feature_columns_.size()));
    for (const std::string& name : parent_feature_columns_) w.PutString(name);
    w.PutU32(static_cast<uint32_t>(child_feature_columns_.size()));
    for (const std::string& name : child_feature_columns_) w.PutString(name);
    AppendSchema(parent_schema_, &w);
    AppendSchema(child_schema_, &w);
    w.PutU64(child_counts_.size());
    for (size_t count : child_counts_) w.PutU64(count);
    doc.AddChunk("meta", std::move(w).Take());
  }
  GREATER_ASSIGN_OR_RETURN_CTX(std::string parent_bytes,
                               parent_model_.SerializeBinary(),
                               "serializing the parent model");
  doc.AddChunk("parent_model", std::move(parent_bytes));
  GREATER_ASSIGN_OR_RETURN_CTX(std::string child_bytes,
                               child_model_.SerializeBinary(),
                               "serializing the child model");
  doc.AddChunk("child_model", std::move(child_bytes));
  return doc.Finish();
}

Status RelationalSynthesizer::DeserializeBinary(std::string_view bytes) {
  GREATER_ASSIGN_OR_RETURN(
      ArtifactReader doc,
      ArtifactReader::Parse(std::string(bytes), kRelationalKind,
                            kRelationalVersion));
  // Build into a fresh instance so a corrupt artifact can never leave
  // *this half-overwritten.
  RelationalSynthesizer loaded;
  {
    GREATER_ASSIGN_OR_RETURN(std::string_view payload, doc.Chunk("meta"));
    ByteReader r(payload);
    GREATER_RETURN_NOT_OK(r.GetString(&loaded.options_.synthetic_key_prefix));
    GREATER_RETURN_NOT_OK(r.GetString(&loaded.key_column_));
    uint32_t num_parent_features = 0;
    GREATER_RETURN_NOT_OK(r.GetU32(&num_parent_features));
    loaded.parent_feature_columns_.resize(num_parent_features);
    for (uint32_t i = 0; i < num_parent_features; ++i) {
      GREATER_RETURN_NOT_OK(r.GetString(&loaded.parent_feature_columns_[i]));
    }
    uint32_t num_child_features = 0;
    GREATER_RETURN_NOT_OK(r.GetU32(&num_child_features));
    loaded.child_feature_columns_.resize(num_child_features);
    for (uint32_t i = 0; i < num_child_features; ++i) {
      GREATER_RETURN_NOT_OK(r.GetString(&loaded.child_feature_columns_[i]));
    }
    GREATER_RETURN_NOT_OK_CTX(ReadSchema(&r, &loaded.parent_schema_),
                              "relational parent schema");
    GREATER_RETURN_NOT_OK_CTX(ReadSchema(&r, &loaded.child_schema_),
                              "relational child schema");
    uint64_t num_counts = 0;
    GREATER_RETURN_NOT_OK(r.GetU64(&num_counts));
    if (num_counts > r.remaining() / 8) {
      return Status::DataLoss(
          "corrupt relational synthesizer: child-count list of " +
          std::to_string(num_counts) + " entries exceeds payload");
    }
    loaded.child_counts_.resize(num_counts);
    for (uint64_t i = 0; i < num_counts; ++i) {
      uint64_t count = 0;
      GREATER_RETURN_NOT_OK(r.GetU64(&count));
      loaded.child_counts_[i] = static_cast<size_t>(count);
    }
    if (!std::is_sorted(loaded.child_counts_.begin(),
                        loaded.child_counts_.end())) {
      return Status::DataLoss(
          "corrupt relational synthesizer: child-count list is not sorted");
    }
    GREATER_RETURN_NOT_OK(r.ExpectEnd());
  }
  {
    GREATER_ASSIGN_OR_RETURN(std::string_view payload,
                             doc.Chunk("parent_model"));
    GREATER_RETURN_NOT_OK_CTX(loaded.parent_model_.DeserializeBinary(payload),
                              "relational parent model");
  }
  {
    GREATER_ASSIGN_OR_RETURN(std::string_view payload,
                             doc.Chunk("child_model"));
    GREATER_RETURN_NOT_OK_CTX(loaded.child_model_.DeserializeBinary(payload),
                              "relational child model");
  }
  loaded.options_.parent = loaded.parent_model_.options();
  loaded.options_.child = loaded.child_model_.options();
  if (!loaded.parent_schema_.HasField(loaded.key_column_) ||
      !loaded.child_schema_.HasField(loaded.key_column_)) {
    return Status::DataLoss(
        "corrupt relational synthesizer: key column '" + loaded.key_column_ +
        "' missing from a stored schema");
  }
  loaded.fitted_ = true;
  *this = std::move(loaded);
  return Status::OK();
}

Status RelationalSynthesizer::Save(const std::string& path) const {
  GREATER_ASSIGN_OR_RETURN_CTX(
      std::string bytes, SerializeBinary(),
      "saving relational synthesizer to '" + path + "'");
  return AtomicWriteFile(path, bytes)
      .WithContext("saving relational synthesizer to '" + path + "'");
}

Status RelationalSynthesizer::Load(const std::string& path) {
  GREATER_ASSIGN_OR_RETURN_CTX(
      std::string bytes, ReadFileBytes(path),
      "loading relational synthesizer from '" + path + "'");
  return DeserializeBinary(bytes)
      .WithContext("loading relational synthesizer from '" + path + "'");
}

}  // namespace greater
