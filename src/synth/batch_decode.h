#ifndef GREATER_SYNTH_BATCH_DECODE_H_
#define GREATER_SYNTH_BATCH_DECODE_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "lm/decode_cache.h"
#include "lm/language_model.h"
#include "synth/great_synthesizer.h"
#include "synth/sample_report.h"
#include "synth/textual_encoder.h"
#include "tabular/table.h"

namespace greater {

/// Lockstep batched row decoder: advances a chunk of in-flight rows
/// ("lanes") one token step at a time, grouping lanes whose next draw is
/// governed by the same (context-window, allow-list, temperature) key so
/// each distinct group costs exactly one restricted model evaluation —
/// the PR 4 decode cache's memoized sharing made explicit within a batch.
///
/// State is structure-of-arrays: per-lane context windows live as
/// fixed-stride slices of one token arena (sized once per chunk, reused
/// across chunks), and cursors / attempt counters / done flags are
/// parallel vectors indexed by lane. Each lane owns the Rng stream
/// derived for its global row index (Rng::DeriveStreamSeed(base, row)),
/// and every draw consumes only that lane's stream, so the batched output
/// is bitwise-identical to running GreatSynthesizer's per-row reference
/// decoder over the same row indices — for any chunk size, both LM
/// backbones, cache on or off, conditional or not.
///
/// One engine per sampling worker (it is as thread-compatible as the
/// DecodeCache it borrows): GreatSynthesizer keeps one in each
/// SamplerWorkspace when Options::batch_rows > 1.
class BatchDecodeEngine {
 public:
  /// Per-run aggregate of the synth.batch.* metrics, kept locally so
  /// tests can reconcile without registry coupling. Invariant:
  /// group_evals + model_evals_saved == lane_steps.
  struct LocalStats {
    uint64_t lanes = 0;        ///< lanes started (== rows attempted)
    uint64_t steps = 0;        ///< lockstep iterations
    uint64_t lane_steps = 0;   ///< per-lane token draws
    uint64_t group_evals = 0;  ///< distribution resolutions (incl. solos)
    uint64_t model_evals_saved = 0;  ///< lane_steps - group_evals
  };

  explicit BatchDecodeEngine(const GreatSynthesizer& synth);

  /// One decode lane donated by an external scheduler — the serving
  /// layer's cross-request packing unit. `row` is the row index within the
  /// owning request, `base` that request's stream base, `conditions` /
  /// `cond_row` the optional forced-column source, and `report` the
  /// request's accounting sink. Lanes from different requests may share
  /// one RunLanes call: every draw a lane makes consumes only the stream
  /// seeded with Rng::DeriveStreamSeed(base, row), so each request's rows
  /// are bitwise-independent of how (or with whom) they were packed.
  struct LaneRequest {
    size_t row = 0;
    uint64_t base = 0;
    const Table* conditions = nullptr;
    size_t cond_row = 0;
    SampleReport* report = nullptr;
  };

  /// Lockstep-decodes an arbitrary lane set, appending one Result<Row> per
  /// lane (in lane order) to `out`. `cache` may be null (uncached grouped
  /// evaluation); `decode` provides the model scratch buffers. Per-lane
  /// accounting lands in each lane's own report with the same counts, row
  /// by row, as the reference decoder.
  void RunLanes(const LaneRequest* lanes, size_t count, DecodeCache* cache,
                DecodeWorkspace* decode, uint64_t parent_span,
                std::vector<Result<Row>>* out);

  /// Samples rows [begin, end) of the surrounding Sample/SampleConditional
  /// call in lockstep, appending one Result<Row> per row (in row order) to
  /// `out`. Lane i draws from Rng(Rng::DeriveStreamSeed(base, begin + i)).
  /// `conditions`, when non-null, forces row i's condition columns exactly
  /// as the per-row path does. Thin wrapper over RunLanes: one lane per
  /// row, all lanes sharing the call's base, conditions, and report.
  void RunChunk(size_t begin, size_t end, const Table* conditions,
                uint64_t base, DecodeCache* cache, DecodeWorkspace* decode,
                SampleReport* stats, uint64_t parent_span,
                std::vector<Result<Row>>* out);

  const LocalStats& stats() const { return local_stats_; }

  /// Test-only observation hook, invoked after every lockstep step with
  /// (0-based step index within the chunk, groups resolved that step).
  /// batch_decode_test's zero-allocation probe reads the operator-new
  /// counter from inside it.
  void (*on_step_for_testing)(size_t step, size_t groups, void* user) =
      nullptr;
  void* on_step_user = nullptr;

 private:
  enum class LaneState : uint8_t { kName, kValue, kDone };

  /// Widest context window a draw can be grouped on — mirrors the packed
  /// key width of DecodeCache; wider windows fall back to per-lane draws.
  static constexpr size_t kMaxWindow = 16;

  /// Memoized remaining-name allow-list, keyed by the lane's emitted-column
  /// bitmask. Lanes at the same decode frontier share one list object (and
  /// one interned id), which is what lets name-state draws group even with
  /// the cache off. Entries live in a deque so the `allowed_` pointers a
  /// step hands out stay stable while the memo grows.
  struct NameMemoEntry {
    uint64_t mask = 0;
    AllowListId id = kNoAllowList;
    std::vector<TokenId> names;
  };

  // Chunk setup -------------------------------------------------------------
  void PrepareLanes();
  /// Per-lane initialization: rows_requested/fault accounting, forced
  /// resolution, prefix encoding, first attempt.
  void StartLane(size_t lane);

  // Lane state machine ------------------------------------------------------
  void BeginAttempt(size_t lane);
  void EnterNameState(size_t lane);
  /// Decode + validation + snap + forced overrides for a completed
  /// attempt; success parks the row in row_scratch_[lane].
  void FinalizeAttempt(size_t lane);
  /// Attempt-level rejection: records last_error and either retries or
  /// exhausts the lane.
  void FailAttempt(size_t lane, Status error);
  void FinishLane(size_t lane, Status status);
  /// Applies a drawn token to the lane per the reference decoder's
  /// transition rules.
  void ApplyToken(size_t lane, TokenId token);
  /// Marks the current column's value complete and moves on (next column
  /// or attempt finalization).
  void CompleteValue(size_t lane);

  // Lockstep draw phase -----------------------------------------------------
  /// Builds allowed_/allow_id_/hash_ for one active lane; sets solo_ when
  /// the lane must be drawn per-lane (unpackable window, or an unkeyable
  /// list under an active cache).
  void PrepareDraw(size_t lane);
  /// Exact draw-key equality for two prepared lanes: same allow-list
  /// identity and the same context window, read straight from the arena.
  /// Group formation probes gtable_ by hash_ and verifies with this, so a
  /// hash collision can only split a group (costing an extra evaluation),
  /// never merge distinct distributions.
  bool SameKey(size_t a, size_t b) const;
  /// Runs one lockstep step over every active lane; returns the number of
  /// groups resolved.
  size_t Step();
  /// One grouped evaluation + per-lane draws over order_[first, last).
  void DrawGroup(size_t first, size_t last);
  void CopyContext(size_t lane);

  /// The lane's accounting sink (per-lane since RunLanes: packed lanes may
  /// belong to different requests, each with its own report).
  SampleReport& rep(size_t lane) { return *lane_specs_[lane].report; }

  const GreatSynthesizer& synth_;

  // Borrowed for the duration of one RunLanes call.
  DecodeCache* cache_ = nullptr;
  DecodeWorkspace* decode_ = nullptr;

  size_t num_lanes_ = 0;
  size_t active_ = 0;
  size_t num_columns_ = 0;

  /// Lane specifications of the current RunLanes call (copied in; the
  /// spans they point at must outlive the call). chunk_scratch_ is
  /// RunChunk's reusable staging buffer.
  std::vector<LaneRequest> lane_specs_;
  std::vector<LaneRequest> chunk_scratch_;

  // --- structure-of-arrays lane state (index = lane), reused across
  // chunks so the steady state allocates nothing ---
  std::vector<Rng> rng_;
  std::vector<LaneState> state_;
  std::vector<size_t> ctx_len_;     ///< tokens in the lane's arena slice
  std::vector<size_t> prefix_len_;  ///< forced-prefix tokens (attempt reset)
  std::vector<size_t> attempt_;     ///< 0-based current attempt
  std::vector<size_t> col_;         ///< column being decoded (kValue)
  std::vector<size_t> value_len_;
  std::vector<size_t> remaining_;
  std::vector<uint8_t> last_column_;
  std::vector<uint8_t> closed_;
  std::vector<uint8_t> constrain_;
  std::vector<uint8_t> lane_failed_;
  std::vector<Status> last_error_;
  std::vector<Status> final_status_;
  std::vector<uint8_t> emitted_;       ///< lane * num_columns_ + c
  std::vector<uint8_t> forced_has_;    ///< lane * num_columns_ + c
  std::vector<Value> forced_value_;    ///< lane * num_columns_ + c
  std::vector<Row> row_scratch_;       ///< decode target / final row
  std::vector<std::vector<TokenId>> prefix_buf_;  ///< forced-prefix tokens

  /// Token arena: lane contexts live at [lane * arena_stride_,
  /// lane * arena_stride_ + ctx_len_[lane]). Sized once per chunk from
  /// the worst-case row length; never reallocated mid-chunk, so token
  /// appends are plain stores.
  std::vector<TokenId> arena_;
  size_t arena_stride_ = 0;

  // --- per-step draw scratch ---
  std::vector<std::vector<TokenId>> lane_names_;  ///< wide-schema fallback
  std::deque<NameMemoEntry> name_memo_;  ///< per-chunk mask -> name list
  size_t name_memo_used_ = 0;
  size_t ctx_limit_ = 0;  ///< lm context_dependence, hoisted per chunk
  std::vector<const std::vector<TokenId>*> allowed_;
  std::vector<AllowListId> allow_id_;
  std::vector<uint64_t> list_key_;  ///< tagged allow-list id or pointer
  std::vector<uint32_t> take_;      ///< window width the draw keys on
  std::vector<uint64_t> hash_;      ///< mixed (list_key, window) sort key
  std::vector<uint8_t> solo_;
  std::vector<TokenId> token_;

  /// O(active) group formation: gtable_ is an open-addressed table of
  /// group ids probed by hash_ (exact membership re-checked with SameKey),
  /// group_rep_/group_count_/group_offset_ describe the groups found this
  /// step, and order_ holds the active lanes scattered into contiguous
  /// per-group runs (lane-ascending within each group, which pins the
  /// representative and keeps draw accounting deterministic). All scratch
  /// is reserved to the one-group-per-lane worst case in PrepareChunk so
  /// steady-state steps allocate nothing.
  std::vector<int32_t> gtable_;
  std::vector<uint32_t> group_id_;      ///< lane -> group
  std::vector<uint32_t> group_rep_;     ///< group -> first (lowest) lane
  std::vector<uint32_t> group_count_;   ///< group -> member count
  std::vector<uint32_t> group_offset_;  ///< group -> first slot in order_
  std::vector<uint32_t> order_;         ///< active lanes, grouped runs
  std::vector<uint32_t> scatter_;       ///< scatter scratch for order_
  TokenSequence ctx_scratch_;           ///< representative context copy
  std::vector<double> weights_;  ///< uncached group evaluation
  std::vector<double> cdf_;
  /// Vectorized cached-group draw scratch (DrawResolvedMany): the group's
  /// lane streams gathered contiguously, the tokens drawn for them, and
  /// the alias-index staging buffer. Reserved to the whole-batch worst
  /// case in PrepareLanes, so steady-state steps allocate nothing.
  std::vector<Rng*> group_rngs_;
  std::vector<TokenId> group_tokens_;
  std::vector<size_t> draw_scratch_;
  TextualEncoder::DecodeScratch decode_scratch_;
  std::string display_scratch_;

  LocalStats local_stats_;
};

}  // namespace greater

#endif  // GREATER_SYNTH_BATCH_DECODE_H_
