#include "synth/recovery_supervisor.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "obs/metrics.h"

namespace greater {

namespace {

Counter& CallsCounter() {
  static Counter* c = &MetricsRegistry::Global().GetCounter("recovery.calls");
  return *c;
}
Counter& RetriesCounter() {
  static Counter* c =
      &MetricsRegistry::Global().GetCounter("recovery.retries");
  return *c;
}
Counter& RecoveredCounter() {
  static Counter* c =
      &MetricsRegistry::Global().GetCounter("recovery.recovered");
  return *c;
}
Counter& FailuresCounter() {
  static Counter* c =
      &MetricsRegistry::Global().GetCounter("recovery.failures");
  return *c;
}
Counter& DegradedCounter() {
  static Counter* c =
      &MetricsRegistry::Global().GetCounter("recovery.degraded_calls");
  return *c;
}
Counter& TripsCounter() {
  static Counter* c =
      &MetricsRegistry::Global().GetCounter("recovery.circuit_trips");
  return *c;
}
Counter& DeadlineCounter() {
  static Counter* c =
      &MetricsRegistry::Global().GetCounter("recovery.deadline_exceeded");
  return *c;
}
Counter& BackoffMsCounter() {
  static Counter* c =
      &MetricsRegistry::Global().GetCounter("recovery.backoff_ms_total");
  return *c;
}
Counter& RetryAfterHonoredCounter() {
  static Counter* c =
      &MetricsRegistry::Global().GetCounter("recovery.retry_after_honored");
  return *c;
}

uint64_t SteadyClockMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void RealSleepMs(uint64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace

RecoverySupervisor::RecoverySupervisor(const GreatSynthesizer* synth,
                                       RecoveryOptions options)
    : synth_(synth), options_(std::move(options)) {
  if (!options_.clock_ms) options_.clock_ms = SteadyClockMs;
  if (!options_.sleep_ms) options_.sleep_ms = RealSleepMs;
}

bool RecoverySupervisor::IsRecoverable(const Status& status) {
  switch (status.code()) {
    case StatusCode::kResourceExhausted:
    case StatusCode::kDataLoss:
    case StatusCode::kInternal:
      return true;
    default:
      return false;
  }
}

Result<Table> RecoverySupervisor::Sample(size_t n, Rng* rng,
                                         SampleReport* report) {
  return Supervise(
      n,
      [&](SamplePolicy policy, SampleReport* attempt_report) {
        return synth_->SampleWithPolicy(n, policy, rng, attempt_report);
      },
      report);
}

Result<Table> RecoverySupervisor::SampleConditional(const Table& conditions,
                                                    Rng* rng,
                                                    SampleReport* report) {
  return Supervise(
      conditions.num_rows(),
      [&](SamplePolicy policy, SampleReport* attempt_report) {
        return synth_->SampleConditionalWithPolicy(conditions, policy, rng,
                                                   attempt_report);
      },
      report);
}

Result<Table> RecoverySupervisor::Supervise(
    size_t n,
    const std::function<Result<Table>(SamplePolicy, SampleReport*)>& attempt,
    SampleReport* report) {
  CallsCounter().Increment();
  const bool has_deadline = options_.row_deadline_ms > 0;
  const uint64_t deadline =
      has_deadline ? options_.clock_ms() + n * options_.row_deadline_ms : 0;

  SamplePolicy policy = circuit_open_ ? SamplePolicy::kLenient
                                      : synth_->options().policy;
  uint64_t backoff = options_.backoff_initial_ms;
  Status last_status = Status::OK();

  for (size_t attempt_idx = 0; attempt_idx <= options_.max_retries;
       ++attempt_idx) {
    SampleReport attempt_report;
    Result<Table> result = attempt(policy, &attempt_report);
    if (result.ok()) {
      if (report) report->Merge(attempt_report);
      if (attempt_idx > 0) RecoveredCounter().Increment();
      consecutive_failures_ = 0;
      return result;
    }
    last_status = result.status();
    if (!IsRecoverable(last_status)) {
      // Deterministic failure (bad arguments, unfitted model): retrying
      // cannot help, and it does not count against the breaker.
      return last_status.WithContext("recovery supervisor: unrecoverable");
    }
    if (attempt_idx == options_.max_retries) break;
    // A failure carrying a retry-after hint (an overloaded server pacing
    // its clients) overrides the local exponential schedule for this wait:
    // the producer knows when capacity frees up better than our guess.
    // The exponential schedule still advances underneath, so a later
    // hint-less failure backs off from where it would have been.
    const std::optional<uint64_t> hint = last_status.retry_after_ms();
    const uint64_t wait = hint.has_value() ? *hint : backoff;
    if (has_deadline && options_.clock_ms() + wait > deadline) {
      DeadlineCounter().Increment();
      last_status = last_status.WithContext(
          "recovery supervisor: row deadline budget of " +
          std::to_string(n * options_.row_deadline_ms) + "ms exceeded");
      break;
    }
    RetriesCounter().Increment();
    if (hint.has_value()) RetryAfterHonoredCounter().Increment();
    BackoffMsCounter().Increment(wait);
    options_.sleep_ms(wait);
    backoff = std::min(
        static_cast<uint64_t>(static_cast<double>(backoff) *
                              options_.backoff_multiplier),
        options_.backoff_max_ms);
  }

  // Retry budget (or deadline) exhausted: a call-level failure.
  ++consecutive_failures_;
  FailuresCounter().Increment();
  bool just_tripped = false;
  if (!circuit_open_ &&
      consecutive_failures_ >= options_.circuit_failure_threshold) {
    circuit_open_ = true;
    just_tripped = true;
    TripsCounter().Increment();
  }
  // One degraded attempt when the breaker (just) opened and the failing
  // attempts were not already lenient: salvage partial output rather than
  // surface an error the caller cannot act on.
  if (just_tripped && policy != SamplePolicy::kLenient) {
    DegradedCounter().Increment();
    SampleReport attempt_report;
    Result<Table> degraded = attempt(SamplePolicy::kLenient, &attempt_report);
    if (degraded.ok()) {
      if (report) report->Merge(attempt_report);
      return degraded;
    }
    last_status = degraded.status();
  }
  return last_status.WithContext(
      "recovery supervisor: " + std::to_string(options_.max_retries) +
      " retries exhausted" + (circuit_open_ ? " (circuit open)" : ""));
}

}  // namespace greater
