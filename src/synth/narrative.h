#ifndef GREATER_SYNTH_NARRATIVE_H_
#define GREATER_SYNTH_NARRATIVE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "tabular/table.h"

namespace greater {

/// Template-based narrative textual encoding — the paper's future-work
/// item (2) in Sec. 5: instead of "Name: Grace, Gender: Female, ...",
/// render "A female named Grace had rice for lunch and steak for dinner
/// while watching action-related video with laptop.", whose sentence-level
/// semantics a stronger LLM could exploit.
///
/// Templates use `{column}` placeholders:
///   "A {gender} named {name} had {lunch} for lunch and {dinner} for
///    dinner."
/// Render substitutes each placeholder with the cell's display string;
/// Parse inverts a rendered sentence back into the placeholder values by
/// matching the template's literal segments (all literal segments must be
/// non-empty between adjacent placeholders for the parse to be
/// unambiguous).
class NarrativeTemplate {
 public:
  /// Compiles a template, validating placeholder syntax against the
  /// schema: every `{column}` must name a schema field, no column may
  /// appear twice, and two placeholders may not be adjacent without a
  /// separating literal.
  static Result<NarrativeTemplate> Compile(const std::string& pattern,
                                           const Schema& schema);

  /// Renders one row.
  std::string Render(const Row& row) const;

  /// Renders every row of a table (aligned with the compile schema).
  Result<std::vector<std::string>> RenderTable(const Table& table) const;

  /// Parses a rendered sentence back into a row. Columns not mentioned in
  /// the template come back null. Fails (DataLoss) when the sentence does
  /// not match the template's literal structure or a value fails to parse
  /// into its column type.
  Result<Row> Parse(const std::string& sentence) const;

  /// Columns referenced by the template, in placeholder order.
  const std::vector<std::string>& columns() const { return column_names_; }

 private:
  struct Segment {
    std::string literal;  // literal text before the placeholder
    int column = -1;      // schema index, or -1 for the trailing literal
  };

  Schema schema_;
  std::vector<Segment> segments_;  // last segment has column == -1
  std::vector<std::string> column_names_;
};

}  // namespace greater

#endif  // GREATER_SYNTH_NARRATIVE_H_
