#ifndef GREATER_SYNTH_TEXTUAL_ENCODER_H_
#define GREATER_SYNTH_TEXTUAL_ENCODER_H_

#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "lm/decode_cache.h"
#include "lm/language_model.h"
#include "tabular/table.h"
#include "text/vocabulary.h"
#include "text/word_tokenizer.h"

namespace greater {

/// Grammar metadata for one encoded column, used by constrained decoding.
struct EncodedColumn {
  std::string name;
  TokenId name_token = Vocabulary::kUnkId;
  /// Every token observed inside this column's values during Build,
  /// strictly ascending (sort-deduped once here, never per decode step).
  std::vector<TokenId> value_tokens;
  /// Stable id of value_tokens in the encoder's AllowListInterner; decode
  /// caches key restricted distributions on it in O(1) instead of hashing
  /// the list per draw.
  AllowListId allow_list_id = kNoAllowList;
};

/// GReaT's textual layer: converts between table rows and token sequences.
///
/// A row encodes as the sentence
///   "Gender is Male, Age is From 20 to 29, Residence is Chicago"
/// with an optional random feature-order permutation per encoded copy (the
/// GReaT training augmentation). Values are word-tokenized, so the string
/// "1" is one token wherever it appears — the Fig. 2 ambiguity — while a
/// semantically enhanced value like "From 20 to 29" spans several tokens.
class TextualEncoder {
 public:
  struct Options {
    /// Number of differently-permuted encodings of each row emitted by
    /// EncodeTable (GReaT's feature-order augmentation).
    size_t permutations_per_row = 2;
    /// When false, every encoding uses schema order.
    bool permute_features = true;
  };

  /// Builds the encoder (and its vocabulary) from a training table.
  /// `extra_corpus` lines (e.g. a pre-training prior) are tokenized into
  /// the vocabulary too, so prior text shares token ids with table text.
  static Result<TextualEncoder> Build(const Table& table,
                                      const Options& options,
                                      const std::vector<std::string>&
                                          extra_corpus = {});
  static Result<TextualEncoder> Build(const Table& table) {
    return Build(table, Options());
  }

  const Vocabulary& vocab() const { return vocab_; }
  const Schema& schema() const { return schema_; }
  const std::vector<EncodedColumn>& columns() const { return columns_; }

  /// Registry of canonical (sorted, deduped) constrained-decoding
  /// allow-lists. Columns intern their value-token lists at Build; the
  /// synthesizer interns its grammar variants at Fit. Read-only during
  /// sampling, so workers share it without locks.
  const AllowListInterner& allow_lists() const { return allow_lists_; }
  AllowListInterner& mutable_allow_lists() { return allow_lists_; }

  TokenId is_token() const { return is_token_; }
  TokenId comma_token() const { return comma_token_; }

  /// Renders the human-readable sentence for a row in the given column
  /// order (indices into the schema).
  std::string RenderSentence(const Row& row,
                             const std::vector<size_t>& order) const;

  /// Encodes one row in the given column order.
  TokenSequence EncodeRow(const Row& row,
                          const std::vector<size_t>& order) const;

  /// Encodes the whole table, emitting options.permutations_per_row copies
  /// of each row with independently drawn feature orders.
  Result<std::vector<TokenSequence>> EncodeTable(const Table& table,
                                                 Rng* rng) const;

  /// EncodeTable with the feature-permutation state threaded explicitly.
  /// The shuffle mutates `order` in place across rows, so encoding a table
  /// chunk by chunk is bitwise-identical to one whole-table call only when
  /// the SAME `order` vector (and rng) persists across the chunk calls —
  /// the streaming fit path's contract. Pass an empty vector to start from
  /// the identity order, exactly as EncodeTable does.
  Result<std::vector<TokenSequence>> EncodeTableWithOrderState(
      const Table& table, Rng* rng, std::vector<size_t>* order) const;

  /// Tokenizes an arbitrary text line against this vocabulary (for prior
  /// corpora; unknown words become <unk>).
  TokenSequence EncodeTextLine(const std::string& line) const;

  /// Parses a generated token sequence back into a row aligned with the
  /// schema. Fails (DataLoss) on malformed grammar, unknown column names,
  /// duplicate or missing columns, or values that do not parse into the
  /// column's physical type.
  Result<Row> DecodeTokens(const TokenSequence& tokens) const;

  /// Reusable buffers for DecodeTokensInto, so steady-state decoding does
  /// not reallocate them per row.
  struct DecodeScratch {
    std::string text;
    std::vector<uint8_t> assigned;
  };

  /// Span-based variant of DecodeTokens that writes into an existing row
  /// (resized and overwritten) and reuses `scratch`. Identical parse
  /// semantics and error statuses; the batched decode engine uses this to
  /// avoid per-row buffer churn.
  Status DecodeTokensInto(const TokenId* tokens, size_t count, Row* row,
                          DecodeScratch* scratch) const;

  /// True if `token` was observed among `column`'s value tokens at Build.
  bool IsObservedValueToken(size_t column, TokenId token) const;

  /// Converts a decoded value string into the column's physical type.
  Result<Value> ParseValue(size_t column, const std::string& text) const;

  /// Persistence (artifact kind "greater.textual_encoder"): options,
  /// schema, the full vocabulary (as a nested artifact), and every
  /// column's grammar metadata. Load rebuilds the derived state — value
  /// token sets and the allow-list interner, re-interned in column order
  /// exactly as Build does — so a loaded encoder's ids match the saved
  /// one's everywhere.
  std::string SerializeBinary() const;
  Status DeserializeBinary(std::string_view bytes);
  Status Save(const std::string& path) const;
  Status Load(const std::string& path);

 private:
  Options options_;
  Schema schema_;
  Vocabulary vocab_;
  WordTokenizer word_tokenizer_;
  std::vector<EncodedColumn> columns_;
  AllowListInterner allow_lists_;
  std::vector<std::unordered_set<TokenId>> value_token_sets_;
  TokenId is_token_ = Vocabulary::kUnkId;
  TokenId comma_token_ = Vocabulary::kUnkId;
};

}  // namespace greater

#endif  // GREATER_SYNTH_TEXTUAL_ENCODER_H_
