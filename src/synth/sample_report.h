#ifndef GREATER_SYNTH_SAMPLE_REPORT_H_
#define GREATER_SYNTH_SAMPLE_REPORT_H_

#include <cstddef>
#include <string>

namespace greater {

/// What a synthesizer does when a row exhausts its retry budget (or an
/// injected fault makes it unrecoverable).
enum class SamplePolicy {
  /// Any exhausted row fails the whole Sample call (historical behaviour).
  kStrict,
  /// Exhausted rows are dropped: the call returns every row that
  /// succeeded, and the SampleReport accounts for the rest. Completed work
  /// is never discarded because one hard row ran out of attempts.
  kLenient,
};

const char* SamplePolicyToString(SamplePolicy policy);

/// Sampling diagnostics. Accumulated per synthesizer across Sample* calls
/// (GreatSynthesizer::stats()) and reported per pipeline run
/// (PipelineResult::sample_report), where the counts aggregate the parent
/// and child models. Row counts reconcile: every requested row is either
/// emitted or exhausted.
struct SampleReport {
  /// Rows asked of SampleRow (directly or via Sample/SampleConditional).
  size_t rows_requested = 0;
  /// Rows that decoded and validated successfully.
  size_t rows_emitted = 0;
  /// Rows abandoned after the per-row attempt budget (or an injected
  /// resource-exhaustion fault). Lenient mode drops these; strict mode
  /// fails the call on the first one.
  size_t rows_exhausted = 0;

  /// Generation attempts, including retries.
  size_t attempts = 0;
  /// Attempts rejected because a generated value fell outside the
  /// observed category set.
  size_t rejected_invalid_value = 0;
  /// Attempts rejected because the token sequence failed to decode.
  size_t rejected_decode_failure = 0;
  /// Attempts that stalled mid-row (no admissible token / runaway value).
  size_t rejected_mid_row = 0;
  /// Failures injected through the fault registry ("synth.sample_row").
  size_t injected_faults = 0;

  /// Free-value-mode attempts that fell back to the tight grammar.
  size_t fallback_grammar_uses = 0;
  /// Cells replaced by the snap-to-observed last resort.
  size_t snapped_cells = 0;

  size_t total_rejected() const {
    return rejected_invalid_value + rejected_decode_failure +
           rejected_mid_row;
  }

  /// Fraction of attempts that were rejected; 0 when nothing was tried.
  double RejectionRate() const;

  /// True when every requested row is accounted for.
  bool Reconciles() const {
    return rows_emitted + rows_exhausted == rows_requested;
  }

  /// Adds `other`'s counts into this report.
  void Merge(const SampleReport& other);

  /// Counts accumulated since `before` (field-wise difference; `before`
  /// must be an earlier snapshot of the same accumulator).
  SampleReport DeltaSince(const SampleReport& before) const;

  /// Adds this report's counts into the global metrics registry under the
  /// `synth.*` names (synth.rows_requested, synth.rows_degraded,
  /// synth.fault_trips, ...). Call with a per-call delta, never with the
  /// lifetime accumulator, or counts double. Keeping the export next to
  /// the report guarantees registry counters reconcile with SampleReport
  /// by construction.
  void ExportToMetrics() const;

  /// One-line human-readable summary.
  std::string ToString() const;
};

}  // namespace greater

#endif  // GREATER_SYNTH_SAMPLE_REPORT_H_
