#ifndef GREATER_SYNTH_RELATIONAL_SYNTHESIZER_H_
#define GREATER_SYNTH_RELATIONAL_SYNTHESIZER_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "synth/great_synthesizer.h"
#include "tabular/table.h"

namespace greater {

/// Parent/child pair of synthetic tables, linked by the key column.
struct RelationalSample {
  Table parent;
  Table child;
};

/// REaLTabFormer-style relational synthesizer (Solatorio & Dupriez 2023),
/// the multi-table engine the paper builds on ("two realtabformer objects
/// created for parent and child tables", Sec. 4.1.4).
///
/// Training: one GreatSynthesizer learns the parent table (contextual
/// attributes per subject); a second learns child rows *jointly with* their
/// parent's attributes, so that at sampling time the parent columns can be
/// forced as a conditioning prefix and the child columns generated
/// conditionally (constrained decoding, see GreatSynthesizer::
/// SampleConditional).
///
/// Sampling: synthesize `n` parent rows; for each, draw a child count from
/// the empirical children-per-parent distribution and generate that many
/// conditioned child rows. Synthetic subjects receive fresh surrogate keys
/// — real identifiers never leak into the output.
class RelationalSynthesizer {
 public:
  struct Options {
    GreatSynthesizer::Options parent;
    GreatSynthesizer::Options child;
    /// Prefix for surrogate keys in synthetic output ("id_0", "id_1", ...).
    std::string synthetic_key_prefix = "id_";
  };

  RelationalSynthesizer() : RelationalSynthesizer(Options()) {}
  explicit RelationalSynthesizer(const Options& options);

  /// Fits on a parent table and a child table sharing `key_column`.
  /// Parent must have exactly one row per key; every child row's key must
  /// appear in the parent.
  Status Fit(const Table& parent, const Table& child,
             const std::string& key_column, Rng* rng);

  /// Generates `num_parents` synthetic subjects with conditioned children.
  /// When the configured GreatSynthesizer policies are lenient, exhausted
  /// parent/child rows are dropped rather than failing the call; `report`
  /// (optional) aggregates the parent- and child-model sampling counts.
  Result<RelationalSample> Sample(size_t num_parents, Rng* rng,
                                  SampleReport* report = nullptr) const;

  /// Generates children conditioned on an externally provided parent table
  /// (schema must equal the training parent's). This is how the DEREC
  /// baseline synthesizes both child tables against ONE shared synthetic
  /// parent: the first model's Sample provides the parent, the second
  /// model's SampleChildren conditions on the same rows.
  Result<Table> SampleChildren(const Table& parent, Rng* rng,
                               SampleReport* report = nullptr) const;

  bool fitted() const { return fitted_; }
  const GreatSynthesizer& parent_model() const { return parent_model_; }
  const GreatSynthesizer& child_model() const { return child_model_; }

  /// Empirical children-per-parent counts observed at Fit (sorted).
  const std::vector<size_t>& child_counts() const { return child_counts_; }

  /// Persistence of the fitted pair (artifact kind
  /// "greater.relational_synthesizer"): key metadata, both schemas, the
  /// children-per-parent distribution, and the two GreatSynthesizer
  /// bundles nested as chunks. The bitwise replay contract of
  /// GreatSynthesizer extends here: Save -> Load -> Sample(seed) equals
  /// Sample(seed) on the saved instance. Requires fitted().
  Result<std::string> SerializeBinary() const;
  Status DeserializeBinary(std::string_view bytes);
  Status Save(const std::string& path) const;
  Status Load(const std::string& path);

 private:
  Options options_;
  bool fitted_ = false;
  std::string key_column_;
  std::vector<std::string> parent_feature_columns_;  // parent minus key
  std::vector<std::string> child_feature_columns_;   // child minus key
  Schema parent_schema_;
  Schema child_schema_;
  GreatSynthesizer parent_model_;
  GreatSynthesizer child_model_;  // trained on parent-features + child rows
  std::vector<size_t> child_counts_;
};

}  // namespace greater

#endif  // GREATER_SYNTH_RELATIONAL_SYNTHESIZER_H_
