#include "synth/streaming_synthesis.h"

#include <string>
#include <string_view>
#include <utility>

#include "common/artifact_io.h"
#include "common/rng.h"
#include "crosstable/checkpoint.h"
#include "obs/span.h"

namespace greater {

Result<StreamingSynthesisResult> RunFromCsvStreaming(
    const std::string& input_csv, const std::string& output_csv,
    size_t sample_rows, const StreamingSynthesisOptions& options) {
  Span span("synth.streaming_run");
  StreamingSynthesisResult result;

  // Schema pass (bounded memory). With a checkpoint dir this also fills
  // the shared chunk store, making the fit passes parse-free.
  FitStage::Options stage_options;
  stage_options.csv = options.csv;
  stage_options.stream = options.stream;
  stage_options.policy = options.ingest_policy;
  stage_options.checkpoint_dir = options.checkpoint_dir;
  GREATER_ASSIGN_OR_RETURN(FitStage fit_stage,
                           FitStage::Open(input_csv, stage_options));
  result.schema = fit_stage.schema();

  // The fitted model is a stage-grain checkpoint keyed on everything that
  // determines it: synthesizer options, fit seed, and the input-content
  // chain from the schema pass. A rerun killed after fit loads the model
  // and goes straight to emission.
  StageCheckpointer stage(options.checkpoint_dir);
  {
    ByteWriter fp;
    GreatSynthesizer::AppendOptionsTo(options.synthesizer, &fp);
    fp.PutU64(options.fit_seed);
    fp.PutU64(fit_stage.content_chain());
    stage.Mix(fp.bytes());
  }

  GreatSynthesizer model(options.synthesizer);
  bool loaded = false;
  if (std::optional<ArtifactReader> doc = stage.TryLoad("oocore.model");
      doc.has_value()) {
    auto restore = [&]() -> Status {
      GREATER_ASSIGN_OR_RETURN(std::string_view bytes, doc->Chunk("model"));
      return model.DeserializeBinary(bytes);
    };
    if (restore().ok()) {
      loaded = true;
    } else {
      model = GreatSynthesizer(options.synthesizer);
    }
  }
  if (!loaded) {
    Rng fit_rng(options.fit_seed);
    GREATER_RETURN_NOT_OK(
        model.FitStreaming(fit_stage.ChunkSource(), &fit_rng));
    GREATER_ASSIGN_OR_RETURN(std::string bytes, model.SerializeBinary());
    ArtifactWriter doc(StageCheckpointer::kKind, StageCheckpointer::kVersion);
    doc.AddChunk("model", std::move(bytes));
    stage.Store("oocore.model", doc);
  }
  result.model_from_checkpoint = loaded;
  result.ingest = fit_stage.report();
  result.input_rows = fit_stage.report().rows_out;

  SampleEmitOptions emit;
  emit.chunk_rows = options.emit_chunk_rows;
  emit.delimiter = options.csv.delimiter;
  emit.use_model_policy = true;
  emit.checkpoint_dir = options.checkpoint_dir;
  GREATER_ASSIGN_OR_RETURN(
      result.sample,
      SampleRowsToCsvStreaming(model, sample_rows, options.sample_seed,
                               output_csv, emit));
  return result;
}

}  // namespace greater
