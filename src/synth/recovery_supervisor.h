#ifndef GREATER_SYNTH_RECOVERY_SUPERVISOR_H_
#define GREATER_SYNTH_RECOVERY_SUPERVISOR_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "synth/great_synthesizer.h"
#include "synth/sample_report.h"
#include "tabular/table.h"

namespace greater {

/// Configuration for RecoverySupervisor. All time values are wall-clock
/// milliseconds; `clock_ms` / `sleep_ms` are injectable so tests can run
/// deadline and backoff scenarios without real waiting.
struct RecoveryOptions {
  /// Retries per supervised call after the first attempt fails with a
  /// recoverable Status (kResourceExhausted, kDataLoss, kInternal).
  /// Invalid-argument / failed-precondition failures never retry — they
  /// are deterministic and would fail identically forever.
  size_t max_retries = 3;
  /// Wall-clock budget per requested row: a call for n rows must finish
  /// (including backoff waits) within n * row_deadline_ms. A retry whose
  /// backoff would cross the deadline is abandoned instead of started.
  /// 0 disables the deadline.
  uint64_t row_deadline_ms = 0;
  /// Exponential backoff between retries: initial, multiplier, cap.
  uint64_t backoff_initial_ms = 10;
  double backoff_multiplier = 2.0;
  uint64_t backoff_max_ms = 1000;
  /// Consecutive supervised-call failures (retry budgets fully exhausted)
  /// before the circuit breaker trips. Once open, every call goes
  /// straight to SamplePolicy::kLenient — the PR-1 graceful-degradation
  /// mode that keeps whatever rows succeed — instead of burning retries
  /// on a persistently failing strict path.
  size_t circuit_failure_threshold = 3;
  /// Monotonic clock in ms; defaults to std::chrono::steady_clock.
  std::function<uint64_t()> clock_ms;
  /// Sleep function for backoff waits; defaults to this_thread::sleep_for.
  std::function<void(uint64_t)> sleep_ms;
};

/// Wraps a fitted GreatSynthesizer's sampling entry points with a
/// recovery discipline (see DESIGN.md, "Durability & recovery"):
///
///   1. Capped exponential-backoff retries on recoverable failures —
///      transient fault-injection trips, retry-budget exhaustion under
///      strict policy, torn-state kInternal errors.
///   2. A per-row deadline budget bounding the worst case: retries stop
///      when the next backoff would cross n * row_deadline_ms.
///      When a failure carries a retry-after hint (Status::retry_after_ms,
///      attached by serving-layer quota/shed rejections), the hint
///      replaces the local exponential wait for that retry — the overload
///      source paces the client (counted in
///      recovery.retry_after_honored); the exponential schedule still
///      advances for later hint-less failures.
///   3. A circuit breaker: after `circuit_failure_threshold` consecutive
///      calls exhaust their retries, the breaker opens and subsequent
///      calls run degraded (SamplePolicy::kLenient) immediately. The call
///      that trips the breaker also makes one final degraded attempt, so
///      callers get partial output instead of an error when possible.
///
/// SampleReport reconciliation: only the *successful* attempt's counts
/// merge into the caller's report, so `Reconciles()` keeps holding (a
/// failed strict attempt aborts mid-accounting; its partial counts are
/// visible in the synth.* metrics but never in the caller's report).
///
/// Exports recovery.calls / recovery.retries / recovery.recovered /
/// recovery.failures / recovery.degraded_calls / recovery.circuit_trips /
/// recovery.deadline_exceeded / recovery.backoff_ms_total through the
/// metrics registry.
///
/// Not thread-safe: supervise one call at a time (matching the underlying
/// synthesizer's contract for concurrent Sample* calls).
class RecoverySupervisor {
 public:
  explicit RecoverySupervisor(const GreatSynthesizer* synth,
                              RecoveryOptions options = RecoveryOptions());

  /// Supervised GreatSynthesizer::Sample.
  Result<Table> Sample(size_t n, Rng* rng, SampleReport* report = nullptr);

  /// Supervised GreatSynthesizer::SampleConditional.
  Result<Table> SampleConditional(const Table& conditions, Rng* rng,
                                  SampleReport* report = nullptr);

  /// True once the breaker has tripped; subsequent calls run degraded.
  bool circuit_open() const { return circuit_open_; }
  /// Consecutive fully-failed calls since the last success.
  size_t consecutive_failures() const { return consecutive_failures_; }

  /// True for Status codes worth retrying (transient by contract).
  static bool IsRecoverable(const Status& status);

 private:
  /// Shared retry/deadline/breaker loop. `attempt` runs one sampling call
  /// under the given policy, accumulating into the given fresh report.
  Result<Table> Supervise(
      size_t n,
      const std::function<Result<Table>(SamplePolicy, SampleReport*)>&
          attempt,
      SampleReport* report);

  const GreatSynthesizer* synth_;
  RecoveryOptions options_;
  bool circuit_open_ = false;
  size_t consecutive_failures_ = 0;
};

}  // namespace greater

#endif  // GREATER_SYNTH_RECOVERY_SUPERVISOR_H_
