#include "synth/batch_decode.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <string>
#include <utility>

#include "common/fault.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace greater {
namespace {

// Batch-engine instrumentation; pointers cached once per process so the
// lockstep loop pays one relaxed atomic add per flush.
struct BatchCounters {
  Counter* lanes;
  Counter* steps;
  Counter* lane_steps;
  Counter* group_evals;
  Counter* model_evals_saved;
  Counter* restricted_evals;
  Histogram* groups_per_step;
  BatchCounters() {
    MetricsRegistry& registry = MetricsRegistry::Global();
    lanes = &registry.GetCounter("synth.batch.lanes");
    steps = &registry.GetCounter("synth.batch.steps");
    lane_steps = &registry.GetCounter("synth.batch.lane_steps");
    group_evals = &registry.GetCounter("synth.batch.group_evals");
    model_evals_saved = &registry.GetCounter("synth.batch.model_evals_saved");
    // The uncached grouped path evaluates the model directly, so it keeps
    // the per-evaluation counter SampleNext would have bumped.
    restricted_evals = &registry.GetCounter("lm.sample_next_restricted");
    groups_per_step = &registry.GetHistogram(
        "synth.batch.groups_per_step",
        {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0});
  }
};

const BatchCounters& GetBatchCounters() {
  static const BatchCounters counters;
  return counters;
}

}  // namespace

BatchDecodeEngine::BatchDecodeEngine(const GreatSynthesizer& synth)
    : synth_(synth) {}

void BatchDecodeEngine::PrepareLanes() {
  num_lanes_ = lane_specs_.size();
  num_columns_ = synth_.encoder_->columns().size();
  const size_t lanes = num_lanes_;
  const size_t cells = lanes * num_columns_;

  rng_.clear();
  rng_.reserve(lanes);
  for (size_t i = 0; i < lanes; ++i) {
    rng_.emplace_back(
        Rng::DeriveStreamSeed(lane_specs_[i].base, lane_specs_[i].row));
  }
  state_.assign(lanes, LaneState::kName);
  ctx_len_.assign(lanes, 0);
  prefix_len_.assign(lanes, 0);
  attempt_.assign(lanes, 0);
  col_.assign(lanes, 0);
  value_len_.assign(lanes, 0);
  remaining_.assign(lanes, 0);
  last_column_.assign(lanes, 0);
  closed_.assign(lanes, 0);
  constrain_.assign(lanes, 0);
  lane_failed_.assign(lanes, 0);
  last_error_.assign(lanes, Status::OK());
  final_status_.assign(lanes, Status::OK());
  emitted_.assign(cells, 0);
  forced_has_.assign(cells, 0);
  forced_value_.assign(cells, Value::Null());
  row_scratch_.resize(lanes);
  prefix_buf_.resize(lanes);
  if (num_columns_ > 64) lane_names_.resize(lanes);
  name_memo_used_ = 0;
  ctx_limit_ = synth_.lm_->context_dependence();
  allowed_.assign(lanes, nullptr);
  allow_id_.assign(lanes, kNoAllowList);
  list_key_.assign(lanes, 0);
  take_.assign(lanes, 0);
  hash_.assign(lanes, 0);
  solo_.assign(lanes, 0);
  token_.assign(lanes, 0);

  // Grouping scratch, reserved to the one-group-per-lane worst case up
  // front so steady-state steps never grow a vector. The probe table gets
  // 2x slack to keep open-addressing runs short.
  size_t table = 16;
  while (table < 2 * lanes) table <<= 1;
  gtable_.resize(table);
  group_id_.resize(lanes);
  group_rep_.reserve(lanes);
  group_count_.reserve(lanes);
  group_offset_.reserve(lanes + 1);
  order_.reserve(lanes);
  scatter_.reserve(lanes);
  group_rngs_.reserve(lanes);
  group_tokens_.reserve(lanes);
  draw_scratch_.reserve(lanes);

  active_ = lanes;
  local_stats_.lanes += lanes;
  GetBatchCounters().lanes->Increment(lanes);

  // Phase A: per-lane accounting, forced resolution, prefix encoding.
  // Lanes that fail here (injected fault, unknown condition column) finish
  // before the lockstep loop ever sees them.
  for (size_t lane = 0; lane < lanes; ++lane) {
    StartLane(lane);
  }

  // Phase B: one arena sized for the worst-case attempt — the longest
  // forced prefix plus every generated column at the value-token cap. The
  // lockstep loop then appends tokens with plain stores, no growth.
  size_t max_prefix = 0;
  for (size_t lane = 0; lane < lanes; ++lane) {
    max_prefix = std::max(max_prefix, prefix_buf_[lane].size());
  }
  arena_stride_ =
      max_prefix +
      num_columns_ * (GreatSynthesizer::kMaxValueTokens + 3);
  if (arena_.size() < lanes * arena_stride_) {
    arena_.resize(lanes * arena_stride_);
  }

  // Phase C: seed each surviving lane's context with its prefix and enter
  // the first attempt.
  for (size_t lane = 0; lane < lanes; ++lane) {
    if (state_[lane] == LaneState::kDone) continue;
    const std::vector<TokenId>& prefix = prefix_buf_[lane];
    std::copy(prefix.begin(), prefix.end(),
              arena_.begin() + lane * arena_stride_);
    prefix_len_[lane] = prefix.size();
    BeginAttempt(lane);
  }
}

void BatchDecodeEngine::StartLane(size_t lane) {
  const Table* conditions = lane_specs_[lane].conditions;
  ++rep(lane).rows_requested;
  // Injected per-row failure, accounted exactly like the per-row decoder:
  // kResourceExhausted counts as a natural exhaustion so lenient callers
  // degrade gracefully and the report still reconciles.
  if (FaultRegistry::AnyArmed()) {
    Status fault = FaultRegistry::Global().Check("synth.sample_row");
    if (!fault.ok()) {
      ++rep(lane).injected_faults;
      if (fault.code() == StatusCode::kResourceExhausted) {
        ++rep(lane).rows_exhausted;
      }
      FinishLane(lane, std::move(fault));
      return;
    }
  }

  const TextualEncoder& encoder = *synth_.encoder_;
  const auto& columns = encoder.columns();
  if (conditions != nullptr) {
    const size_t cond_row = lane_specs_[lane].cond_row;
    const Schema& schema = encoder.schema();
    for (size_t c = 0; c < conditions->num_columns(); ++c) {
      Result<size_t> idx =
          schema.FieldIndex(conditions->schema().field(c).name);
      if (!idx.ok()) {
        FinishLane(lane, idx.status());
        return;
      }
      size_t field = std::move(idx).ValueOrDie();
      forced_has_[lane * num_columns_ + field] = 1;
      forced_value_[lane * num_columns_ + field] = conditions->at(cond_row, c);
    }
  }

  // Forced columns become the conditioning prefix (schema order), encoded
  // once per lane — every attempt replays the same prefix tokens.
  std::vector<TokenId>& prefix = prefix_buf_[lane];
  prefix.clear();
  size_t written = 0;
  for (size_t c = 0; c < num_columns_; ++c) {
    if (!forced_has_[lane * num_columns_ + c]) continue;
    if (written > 0) prefix.push_back(encoder.comma_token());
    prefix.push_back(columns[c].name_token);
    prefix.push_back(encoder.is_token());
    std::string text =
        forced_value_[lane * num_columns_ + c].ToDisplayString();
    for (TokenId id : encoder.EncodeTextLine(text)) prefix.push_back(id);
    ++written;
  }
}

void BatchDecodeEngine::BeginAttempt(size_t lane) {
  const GreatSynthesizer::Options& options = synth_.options_;
  ++rep(lane).attempts;
  // In free-value mode the last attempt falls back to the tight grammar so
  // the surrounding Sample call cannot die on an unlucky row.
  bool constrain = options.constrain_values_to_column ||
                   (options.fallback_to_constrained &&
                    attempt_[lane] + 1 == options.max_attempts_per_row);
  if (constrain && !options.constrain_values_to_column) {
    ++rep(lane).fallback_grammar_uses;
  }
  constrain_[lane] = constrain ? 1 : 0;
  ctx_len_[lane] = prefix_len_[lane];
  size_t forced_count = 0;
  for (size_t c = 0; c < num_columns_; ++c) {
    uint8_t has = forced_has_[lane * num_columns_ + c];
    emitted_[lane * num_columns_ + c] = has;
    forced_count += has;
  }
  remaining_[lane] = num_columns_ - forced_count;
  if (remaining_[lane] == 0) {
    // Every column forced: the attempt needs no draws at all.
    FinalizeAttempt(lane);
    return;
  }
  EnterNameState(lane);
}

void BatchDecodeEngine::EnterNameState(size_t lane) {
  if (ctx_len_[lane] > 0) {
    arena_[lane * arena_stride_ + ctx_len_[lane]] =
        synth_.encoder_->comma_token();
    ++ctx_len_[lane];
  }
  state_[lane] = LaneState::kName;
}

void BatchDecodeEngine::FinalizeAttempt(size_t lane) {
  const TextualEncoder& encoder = *synth_.encoder_;
  const GreatSynthesizer::Options& options = synth_.options_;
  Status decoded = encoder.DecodeTokensInto(
      arena_.data() + lane * arena_stride_, ctx_len_[lane],
      &row_scratch_[lane], &decode_scratch_);
  if (!decoded.ok()) {
    ++rep(lane).rejected_decode_failure;
    FailAttempt(lane, std::move(decoded));
    return;
  }
  Row& row = row_scratch_[lane];

  if (options.restrict_to_observed) {
    bool valid = true;
    for (size_t c = 0; c < num_columns_; ++c) {
      if (forced_has_[lane * num_columns_ + c]) continue;
      display_scratch_ = row[c].ToDisplayString();
      if (synth_.observed_values_[c].set.count(display_scratch_) == 0) {
        if (attempt_[lane] + 1 == options.max_attempts_per_row &&
            options.fallback_to_constrained) {
          // Last resort: snap the cell to a uniformly drawn observed
          // value, indexing the sorted pool with this lane's own stream —
          // the same draw the per-row decoder makes.
          const auto& pool = synth_.observed_values_[c].sorted;
          const std::string& snapped =
              pool[rng_[lane].Index(pool.size())];
          Result<Value> parsed = encoder.ParseValue(c, snapped);
          if (!parsed.ok()) {
            FinishLane(lane, parsed.status());
            return;
          }
          row[c] = std::move(parsed).ValueOrDie();
          ++rep(lane).snapped_cells;
          continue;
        }
        valid = false;
        break;
      }
    }
    if (!valid) {
      ++rep(lane).rejected_invalid_value;
      FailAttempt(lane, Status::DataLoss(
                            "generated value outside the observed "
                            "category set"));
      return;
    }
  }
  // Forced values override whatever round-tripped through tokens (they
  // may contain words outside the vocabulary).
  for (size_t c = 0; c < num_columns_; ++c) {
    if (forced_has_[lane * num_columns_ + c]) {
      row[c] = forced_value_[lane * num_columns_ + c];
    }
  }
  ++rep(lane).rows_emitted;
  lane_failed_[lane] = 0;
  state_[lane] = LaneState::kDone;
  --active_;
}

void BatchDecodeEngine::FailAttempt(size_t lane, Status error) {
  last_error_[lane] = std::move(error);
  const GreatSynthesizer::Options& options = synth_.options_;
  if (attempt_[lane] + 1 >= options.max_attempts_per_row) {
    ++rep(lane).rows_exhausted;
    FinishLane(lane,
               Status::ResourceExhausted(
                   "no valid row after " +
                   std::to_string(options.max_attempts_per_row) +
                   " attempts; last error: " + last_error_[lane].ToString()));
    return;
  }
  ++attempt_[lane];
  BeginAttempt(lane);
}

void BatchDecodeEngine::FinishLane(size_t lane, Status status) {
  final_status_[lane] = std::move(status);
  lane_failed_[lane] = 1;
  state_[lane] = LaneState::kDone;
  --active_;
}

void BatchDecodeEngine::CompleteValue(size_t lane) {
  emitted_[lane * num_columns_ + col_[lane]] = 1;
  if (--remaining_[lane] == 0) {
    FinalizeAttempt(lane);
    return;
  }
  EnterNameState(lane);
}

void BatchDecodeEngine::ApplyToken(size_t lane, TokenId token) {
  const TextualEncoder& encoder = *synth_.encoder_;
  TokenId* ctx = arena_.data() + lane * arena_stride_;
  if (state_[lane] == LaneState::kName) {
    const auto& columns = encoder.columns();
    size_t col = num_columns_;
    for (size_t c = 0; c < num_columns_; ++c) {
      if (!emitted_[lane * num_columns_ + c] &&
          columns[c].name_token == token) {
        col = c;
        break;
      }
    }
    if (col == num_columns_) {
      ++rep(lane).rejected_mid_row;
      FailAttempt(lane, Status::DataLoss("generation failed mid-row"));
      return;
    }
    ctx[ctx_len_[lane]++] = token;
    ctx[ctx_len_[lane]++] = encoder.is_token();
    col_[lane] = col;
    value_len_[lane] = 0;
    last_column_[lane] = remaining_[lane] == 1 ? 1 : 0;
    closed_[lane] = last_column_[lane];  // last column ends at eos
    state_[lane] = LaneState::kValue;
    return;
  }
  // LaneState::kValue: a terminator after at least one value token closes
  // the value (the terminator itself is not appended), otherwise the token
  // joins the value up to the shared cap.
  if (value_len_[lane] > 0 &&
      (token == encoder.comma_token() || token == Vocabulary::kEosId)) {
    closed_[lane] = 1;
    CompleteValue(lane);
    return;
  }
  ctx[ctx_len_[lane]++] = token;
  ++value_len_[lane];
  if (value_len_[lane] >= GreatSynthesizer::kMaxValueTokens) {
    if (closed_[lane]) {
      // Last column at the cap: the per-row decoder accepts the value as
      // closed-by-eos, so the batched engine must as well.
      CompleteValue(lane);
    } else {
      ++rep(lane).rejected_mid_row;
      FailAttempt(lane, Status::DataLoss("generation failed mid-row"));
    }
  }
}

void BatchDecodeEngine::PrepareDraw(size_t lane) {
  const TextualEncoder& encoder = *synth_.encoder_;
  if (state_[lane] == LaneState::kName) {
    if (num_columns_ <= 64) {
      // Remaining column names, memoized by the lane's emitted-column
      // bitmask: every lane at the same decode frontier shares one list
      // object and one interned id, so name-state draws group instead of
      // each lane rebuilding (and hashing) its own copy per step.
      uint64_t mask = 0;
      const uint8_t* emitted = emitted_.data() + lane * num_columns_;
      for (size_t c = 0; c < num_columns_; ++c) {
        mask |= static_cast<uint64_t>(emitted[c]) << c;
      }
      NameMemoEntry* entry = nullptr;
      for (size_t i = 0; i < name_memo_used_; ++i) {
        if (name_memo_[i].mask == mask) {
          entry = &name_memo_[i];
          break;
        }
      }
      if (entry == nullptr) {
        if (name_memo_used_ == name_memo_.size()) name_memo_.emplace_back();
        entry = &name_memo_[name_memo_used_++];
        entry->mask = mask;
        entry->names.clear();
        const auto& columns = encoder.columns();
        for (size_t c = 0; c < num_columns_; ++c) {
          if (!((mask >> c) & 1)) {
            entry->names.push_back(columns[c].name_token);
          }
        }
        entry->id = cache_ != nullptr ? cache_->InternTransient(entry->names)
                                      : kNoAllowList;
      }
      allowed_[lane] = &entry->names;
      allow_id_[lane] = entry->id;
    } else {
      // Wide-schema fallback (memo masks cap at 64 columns): lane-local
      // remaining-name list, interned per draw as the per-row path does.
      std::vector<TokenId>& names = lane_names_[lane];
      names.clear();
      const auto& columns = encoder.columns();
      for (size_t c = 0; c < num_columns_; ++c) {
        if (!emitted_[lane * num_columns_ + c]) {
          names.push_back(columns[c].name_token);
        }
      }
      allowed_[lane] = &names;
      allow_id_[lane] =
          cache_ != nullptr ? cache_->InternTransient(names) : kNoAllowList;
    }
  } else {
    const GreatSynthesizer::ValueGrammar& grammar =
        constrain_[lane] ? synth_.column_grammars_[col_[lane]]
                         : synth_.free_grammar_;
    if (value_len_[lane] == 0) {
      allowed_[lane] = &grammar.values;
      allow_id_[lane] = grammar.values_id;
    } else if (last_column_[lane]) {
      allowed_[lane] = &grammar.with_eos;
      allow_id_[lane] = grammar.with_eos_id;
    } else {
      allowed_[lane] = &grammar.with_comma;
      allow_id_[lane] = grammar.with_comma_id;
    }
  }

  // Sort key: a mixed hash of the context window (exactly the suffix the
  // model conditions on, bos-padded like DecodeCache::PackContext) and a
  // tagged allow-list identity. Interned ids tag the low bit; raw list
  // pointers (shared, stable lists) are pointer-aligned, so the two
  // namespaces cannot collide. Group formation verifies exact equality
  // (SameKey) within hash runs.
  size_t padded = ctx_len_[lane] + 1;
  size_t take = std::min(ctx_limit_, padded);
  if (take > kMaxWindow) {
    solo_[lane] = 1;  // window wider than the packed key: draw per lane
    return;
  }
  if (cache_ != nullptr && allow_id_[lane] == kNoAllowList) {
    solo_[lane] = 1;  // transient namespace exhausted: match serial path
    return;
  }
  solo_[lane] = 0;
  uint64_t list_key =
      allow_id_[lane] != kNoAllowList
          ? (static_cast<uint64_t>(allow_id_[lane]) << 1) | 1u
          : static_cast<uint64_t>(
                reinterpret_cast<uintptr_t>(allowed_[lane]));
  list_key_[lane] = list_key;
  take_[lane] = static_cast<uint32_t>(take);
  const TokenId* ctx = arena_.data() + lane * arena_stride_;
  size_t start = padded - take;
  uint64_t h = list_key * 0x9e3779b97f4a7c15ULL + take;
  for (size_t j = 0; j < take; ++j) {
    size_t idx = start + j;
    TokenId t = idx == 0 ? Vocabulary::kBosId : ctx[idx - 1];
    h = h * 0x100000001b3ULL +
        static_cast<uint64_t>(static_cast<uint32_t>(t));
  }
  h ^= h >> 29;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 32;
  hash_[lane] = h;
}

bool BatchDecodeEngine::SameKey(size_t a, size_t b) const {
  if (list_key_[a] != list_key_[b] || take_[a] != take_[b]) return false;
  const size_t take = take_[a];
  const TokenId* ca = arena_.data() + a * arena_stride_;
  const TokenId* cb = arena_.data() + b * arena_stride_;
  const size_t sa = ctx_len_[a] + 1 - take;
  const size_t sb = ctx_len_[b] + 1 - take;
  for (size_t j = 0; j < take; ++j) {
    TokenId ta = sa + j == 0 ? Vocabulary::kBosId : ca[sa + j - 1];
    TokenId tb = sb + j == 0 ? Vocabulary::kBosId : cb[sb + j - 1];
    if (ta != tb) return false;
  }
  return true;
}

void BatchDecodeEngine::CopyContext(size_t lane) {
  const TokenId* ctx = arena_.data() + lane * arena_stride_;
  ctx_scratch_.assign(ctx, ctx + ctx_len_[lane]);
}

void BatchDecodeEngine::DrawGroup(size_t first, size_t last) {
  const size_t rep = order_[first];
  const LanguageModel& lm = *synth_.lm_;
  const double temperature = synth_.options_.temperature;
  CopyContext(rep);

  if (solo_[rep]) {
    // Singleton group that could not be keyed: the reference per-lane
    // call, token for token.
    for (size_t k = first; k < last; ++k) {
      size_t lane = order_[k];
      if (k != first) CopyContext(lane);
      if (cache_ != nullptr) {
        token_[lane] = cache_->SampleRestricted(
            lm, ctx_scratch_, *allowed_[lane], allow_id_[lane], temperature,
            &rng_[lane], decode_);
      } else {
        token_[lane] = lm.SampleNext(ctx_scratch_, &rng_[lane], temperature,
                                     allowed_[lane], decode_);
      }
    }
    return;
  }

  if (cache_ != nullptr) {
    // One resolution (lookup-or-compute) serves every lane of the group;
    // each lane then draws from the resolved entry with its own stream,
    // bitwise as SampleRestricted would have.
    DecodeCache::ResolvedDist dist = cache_->ResolveRestricted(
        lm, ctx_scratch_, *allowed_[rep], allow_id_[rep], temperature,
        decode_);
    if (dist.cacheable) {
      // Vectorized group draw: gather the group's lane streams, draw them
      // all against the one resolved entry (alias draws become two table
      // sweeps instead of an interleaved per-lane walk), then scatter the
      // tokens back. Lanes of one group share an allow-list identity, so
      // the representative's candidate list serves every member; each lane
      // still consumes only its own stream, bitwise as DrawResolved.
      const size_t count = last - first;
      group_rngs_.clear();
      for (size_t k = first; k < last; ++k) {
        group_rngs_.push_back(&rng_[order_[k]]);
      }
      group_tokens_.resize(count);
      cache_->DrawResolvedMany(dist, *allowed_[rep], group_rngs_.data(),
                               count, group_tokens_.data(), &draw_scratch_);
      for (size_t k = first; k < last; ++k) {
        token_[order_[k]] = group_tokens_[k - first];
      }
      return;
    }
    // Unreachable by construction (PrepareDraw pre-screens the key), but
    // degrade to the reference per-lane path rather than asserting.
    for (size_t k = first; k < last; ++k) {
      size_t lane = order_[k];
      CopyContext(lane);
      token_[lane] = cache_->SampleRestricted(
          lm, ctx_scratch_, *allowed_[lane], allow_id_[lane], temperature,
          &rng_[lane], decode_);
    }
    return;
  }

  // Cache off: evaluate the restricted distribution once for the group,
  // then replay Rng::Categorical per lane against the shared running-sum
  // table — the same draw scheme LanguageModel::SampleNext uses, so each
  // lane's token and stream advance are bitwise-identical to a direct
  // per-lane SampleNext call.
  const std::vector<TokenId>& candidates = *allowed_[rep];
  GetBatchCounters().restricted_evals->Increment();
  lm.NextTokenWeightsRestricted(ctx_scratch_, candidates, decode_,
                                &weights_);
  ApplyTemperatureShaping(&weights_, temperature);
  cdf_.clear();
  double total = 0.0;
  for (double w : weights_) {
    total += w;
    cdf_.push_back(total);
  }
  for (size_t k = first; k < last; ++k) {
    size_t lane = order_[k];
    const std::vector<TokenId>& lane_candidates = *allowed_[lane];
    if (total <= 0.0) {
      // Zero candidate mass: uniform over the allow-list, exactly like
      // SampleNext's degradation path.
      token_[lane] = lane_candidates.empty()
                         ? Vocabulary::kEosId
                         : lane_candidates[rng_[lane].Index(
                               lane_candidates.size())];
      continue;
    }
    double target = rng_[lane].Uniform() * total;
    auto it = std::upper_bound(cdf_.begin(), cdf_.end(), target);
    size_t idx = it == cdf_.end()
                     ? cdf_.size() - 1  // numerical slack, as uncached
                     : static_cast<size_t>(it - cdf_.begin());
    token_[lane] = lane_candidates[idx];
  }
}

size_t BatchDecodeEngine::Step() {
  // O(active) group formation. Walking lanes in ascending order makes the
  // first lane of each key its group's representative and keeps members
  // lane-ascending after the scatter, so the grouping is deterministic.
  // Group processing order cannot affect output either way: every draw
  // consumes only its own lane's stream.
  const uint64_t mask = gtable_.size() - 1;
  std::fill(gtable_.begin(), gtable_.end(), -1);
  order_.clear();
  group_rep_.clear();
  group_count_.clear();
  for (size_t lane = 0; lane < num_lanes_; ++lane) {
    if (state_[lane] == LaneState::kDone) continue;
    PrepareDraw(lane);
    order_.push_back(static_cast<uint32_t>(lane));
    if (solo_[lane]) {
      // Singleton by decree; never entered in the table, never probed.
      group_id_[lane] = static_cast<uint32_t>(group_rep_.size());
      group_rep_.push_back(static_cast<uint32_t>(lane));
      group_count_.push_back(1);
      continue;
    }
    size_t slot = hash_[lane] & mask;
    for (;;) {
      int32_t g = gtable_[slot];
      if (g < 0) {
        gtable_[slot] = static_cast<int32_t>(group_rep_.size());
        group_id_[lane] = static_cast<uint32_t>(group_rep_.size());
        group_rep_.push_back(static_cast<uint32_t>(lane));
        group_count_.push_back(1);
        break;
      }
      size_t rep = group_rep_[static_cast<size_t>(g)];
      if (hash_[rep] == hash_[lane] && SameKey(lane, rep)) {
        group_id_[lane] = static_cast<uint32_t>(g);
        ++group_count_[static_cast<size_t>(g)];
        break;
      }
      slot = (slot + 1) & mask;
    }
  }

  // Prefix-sum the counts into per-group runs, then scatter the active
  // lanes into them; group_offset_ doubles as the fill cursor and is
  // rewound before DrawGroup consumes the runs.
  const size_t groups = group_rep_.size();
  group_offset_.resize(groups + 1);
  uint32_t off = 0;
  for (size_t g = 0; g < groups; ++g) {
    group_offset_[g] = off;
    off += group_count_[g];
  }
  group_offset_[groups] = off;
  scatter_.resize(order_.size());
  for (uint32_t lane : order_) {
    scatter_[group_offset_[group_id_[lane]]++] = lane;
  }
  for (size_t g = groups; g > 0; --g) {
    group_offset_[g] = group_offset_[g - 1];
  }
  group_offset_[0] = 0;
  order_.swap(scatter_);

  for (size_t g = 0; g < groups; ++g) {
    DrawGroup(group_offset_[g], group_offset_[g + 1]);
  }

  local_stats_.steps += 1;
  local_stats_.lane_steps += order_.size();
  local_stats_.group_evals += groups;
  local_stats_.model_evals_saved += order_.size() - groups;
  GetBatchCounters().groups_per_step->Observe(static_cast<double>(groups));

  // Token application is lane-local, so the grouped draw order above
  // cannot leak between lanes here.
  for (uint32_t lane : order_) {
    ApplyToken(lane, token_[lane]);
  }
  return groups;
}

void BatchDecodeEngine::RunLanes(const LaneRequest* lanes, size_t count,
                                 DecodeCache* cache, DecodeWorkspace* decode,
                                 uint64_t parent_span,
                                 std::vector<Result<Row>>* out) {
  if (count == 0) return;
  cache_ = cache;
  decode_ = decode;
  lane_specs_.assign(lanes, lanes + count);
  Span span("synth.batch", parent_span);
  const LocalStats before = local_stats_;

  PrepareLanes();
  size_t step = 0;
  while (active_ > 0) {
    size_t groups = Step();
    if (on_step_for_testing != nullptr) {
      on_step_for_testing(step, groups, on_step_user);
    }
    ++step;
  }

  const BatchCounters& counters = GetBatchCounters();
  counters.steps->Increment(local_stats_.steps - before.steps);
  counters.lane_steps->Increment(local_stats_.lane_steps -
                                 before.lane_steps);
  counters.group_evals->Increment(local_stats_.group_evals -
                                  before.group_evals);
  counters.model_evals_saved->Increment(local_stats_.model_evals_saved -
                                        before.model_evals_saved);

  for (size_t lane = 0; lane < num_lanes_; ++lane) {
    if (lane_failed_[lane]) {
      out->push_back(Result<Row>(std::move(final_status_[lane])));
    } else {
      out->push_back(Result<Row>(std::move(row_scratch_[lane])));
    }
  }
  cache_ = nullptr;
  decode_ = nullptr;
}

void BatchDecodeEngine::RunChunk(size_t begin, size_t end,
                                 const Table* conditions, uint64_t base,
                                 DecodeCache* cache, DecodeWorkspace* decode,
                                 SampleReport* stats, uint64_t parent_span,
                                 std::vector<Result<Row>>* out) {
  assert(end >= begin);
  if (end == begin) return;
  chunk_scratch_.clear();
  chunk_scratch_.reserve(end - begin);
  for (size_t row = begin; row < end; ++row) {
    chunk_scratch_.push_back(
        LaneRequest{row, base, conditions, row, stats});
  }
  RunLanes(chunk_scratch_.data(), chunk_scratch_.size(), cache, decode,
           parent_span, out);
}

}  // namespace greater
