#ifndef GREATER_SYNTH_STREAMING_SYNTHESIS_H_
#define GREATER_SYNTH_STREAMING_SYNTHESIS_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "stream/fit_stage.h"
#include "stream/sample_emit.h"
#include "stream/stream_options.h"
#include "synth/great_synthesizer.h"
#include "synth/sample_report.h"
#include "tabular/csv.h"
#include "tabular/schema.h"

namespace greater {

/// Configuration for the end-to-end out-of-core run (RunFromCsvStreaming).
struct StreamingSynthesisOptions {
  GreatSynthesizer::Options synthesizer;
  /// CSV dialect of the input file.
  CsvReadOptions csv;
  /// Ingest-side streaming knobs: chunk_rows bounds fit-side memory.
  StreamOptions stream;
  StreamPolicy ingest_policy = StreamPolicy::kStrict;
  /// Seed of the fit-side Rng (feature-permutation draws).
  uint64_t fit_seed = 17;
  /// Seed of the emission-side draw streams.
  uint64_t sample_seed = 41;
  /// Rows per emission chunk: the emission-side memory bound.
  size_t emit_chunk_rows = 1024;
  /// Root directory for ALL durability state (ingest chunk store, fitted
  /// model stage checkpoint, emission chunk store). Empty disables
  /// checkpointing; set, a kill -9 at ANY point reruns byte-identically,
  /// paying only for the work after the last completed chunk.
  std::string checkpoint_dir;
};

/// Outcome of an out-of-core run.
struct StreamingSynthesisResult {
  Schema schema;              ///< inferred input schema
  StreamIngestReport ingest;  ///< last ingest pass (reconciles)
  SampleReport sample;        ///< emission accounting (reconciles)
  bool model_from_checkpoint = false;  ///< fit skipped via stage checkpoint
  uint64_t input_rows = 0;             ///< rows ingested per pass
};

/// End-to-end out-of-core synthesis: infer the input CSV's schema in one
/// bounded-memory pass, fit a GreatSynthesizer through streaming chunk
/// passes (GreatSynthesizer::FitStreaming over FitStage::ChunkSource, with
/// options.synthesizer.num_fit_shards count shards), then stream
/// `sample_rows` synthetic rows into `output_csv` chunk by chunk
/// (SampleRowsToCsvStreaming). The input table and the output table are
/// never materialized: peak memory is bounded by the chunk sizes plus the
/// model, independent of either row count.
///
/// With a checkpoint directory, the run is durable at three grains —
/// parsed input chunks, the fitted model, rendered output chunks — and a
/// rerun after a kill anywhere produces a byte-identical output file.
Result<StreamingSynthesisResult> RunFromCsvStreaming(
    const std::string& input_csv, const std::string& output_csv,
    size_t sample_rows, const StreamingSynthesisOptions& options);

}  // namespace greater

#endif  // GREATER_SYNTH_STREAMING_SYNTHESIS_H_
