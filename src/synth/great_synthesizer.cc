#include "synth/great_synthesizer.h"

#include <algorithm>
#include <utility>

#include "common/artifact_io.h"
#include "common/fault.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "synth/batch_decode.h"
#include "tabular/table_builder.h"

namespace greater {
namespace {

Histogram& RowLatencyHistogram() {
  static Histogram* histogram =
      &MetricsRegistry::Global().GetLatencyHistogram("synth.sample_row_us");
  return *histogram;
}

// Inserts `id` into a strictly ascending list, keeping it sorted and
// deduplicated — the same insert-if-absent the sampler used to run per
// decode step, now done once at Fit.
void InsertSorted(std::vector<TokenId>* ids, TokenId id) {
  auto pos = std::lower_bound(ids->begin(), ids->end(), id);
  if (pos == ids->end() || *pos != id) ids->insert(pos, id);
}

}  // namespace

GreatSynthesizer::GreatSynthesizer(const Options& options)
    : options_(options) {}

// Defined here, where BatchDecodeEngine is complete (SamplerWorkspace holds
// it behind a unique_ptr).
GreatSynthesizer::GreatSynthesizer(GreatSynthesizer&&) noexcept = default;
GreatSynthesizer& GreatSynthesizer::operator=(GreatSynthesizer&&) noexcept =
    default;
GreatSynthesizer::~GreatSynthesizer() = default;

Status GreatSynthesizer::Fit(const Table& train, Rng* rng) {
  Span fit_span("synth.fit");
  if (fitted()) {
    return Status::FailedPrecondition("GreatSynthesizer already fitted");
  }
  if (train.num_rows() == 0) {
    return Status::Invalid("cannot fit on an empty table");
  }
  GREATER_FAULT_POINT("lm.fit");
  GREATER_ASSIGN_OR_RETURN(
      TextualEncoder encoder,
      TextualEncoder::Build(train, options_.encoder, options_.prior_corpus));
  encoder_ = std::make_unique<TextualEncoder>(std::move(encoder));

  GREATER_ASSIGN_OR_RETURN(std::vector<TokenSequence> sequences,
                           encoder_->EncodeTable(train, rng));
  if (options_.max_training_sequences > 0 &&
      sequences.size() > options_.max_training_sequences) {
    rng->Shuffle(&sequences);
    sequences.resize(options_.max_training_sequences);
  }

  std::vector<TokenSequence> prior_sequences;
  bool use_prior = options_.prior_weight > 0.0 && !options_.prior_corpus.empty();
  if (use_prior) {
    prior_sequences.reserve(options_.prior_corpus.size());
    for (const auto& line : options_.prior_corpus) {
      prior_sequences.push_back(encoder_->EncodeTextLine(line));
    }
  }

  size_t vocab_size = encoder_->vocab().size();
  switch (options_.backbone) {
    case Backbone::kNGram: {
      NGramLm::Options lm_options = options_.ngram;
      if (use_prior) lm_options.prior_weight = options_.prior_weight;
      auto lm = std::make_unique<NGramLm>(vocab_size, lm_options);
      if (use_prior) {
        GREATER_RETURN_NOT_OK(lm->SetPriorCorpus(prior_sequences));
      }
      GREATER_RETURN_NOT_OK(lm->Fit(sequences));
      lm_ = std::move(lm);
      break;
    }
    case Backbone::kNeural: {
      NeuralLm::Options lm_options = options_.neural;
      lm_options.num_threads =
          std::max(lm_options.num_threads, options_.num_threads);
      auto lm = std::make_unique<NeuralLm>(vocab_size, lm_options);
      if (use_prior) {
        GREATER_RETURN_NOT_OK(lm->SetPriorCorpus(prior_sequences));
      }
      GREATER_RETURN_NOT_OK(lm->Fit(sequences));
      lm_ = std::move(lm);
      break;
    }
  }

  observed_values_.clear();
  observed_values_.resize(train.num_columns());
  for (size_t c = 0; c < train.num_columns(); ++c) {
    for (size_t r = 0; r < train.num_rows(); ++r) {
      observed_values_[c].Insert(train.at(r, c).ToDisplayString());
    }
    observed_values_[c].SortPool();
  }
  BuildGrammars();
  return Status::OK();
}

Status GreatSynthesizer::FitStreaming(const TableChunkSource& chunks,
                                      Rng* rng) {
  Span fit_span("synth.fit_streaming");
  if (fitted()) {
    return Status::FailedPrecondition("GreatSynthesizer already fitted");
  }
  if (options_.backbone != Backbone::kNGram) {
    return Status::Invalid(
        "FitStreaming requires the n-gram backbone (neural training needs "
        "the whole corpus in memory)");
  }
  if (options_.max_training_sequences > 0) {
    return Status::Invalid(
        "FitStreaming does not support max_training_sequences (a uniform "
        "subsample needs the whole corpus)");
  }
  GREATER_FAULT_POINT("lm.fit");

  // Pass A: one streaming scan collecting each column's distinct values in
  // first-seen order (deduplicated on display string, exactly how both the
  // encoder's vocabulary and the observed-value pools key values).
  struct DistinctColumn {
    std::vector<Value> values;  // first occurrence of each display string
    std::unordered_set<std::string> seen;
  };
  std::vector<DistinctColumn> distinct;
  std::optional<Schema> schema;
  uint64_t total_rows = 0;
  {
    GREATER_ASSIGN_OR_RETURN(TableChunkStream next_chunk, chunks());
    for (;;) {
      GREATER_ASSIGN_OR_RETURN(std::optional<Table> chunk, next_chunk());
      if (!chunk.has_value()) break;
      if (!schema.has_value()) {
        schema = chunk->schema();
        distinct.resize(chunk->num_columns());
      } else if (!(chunk->schema() == *schema)) {
        return Status::Invalid(
            "FitStreaming chunk source changed schema mid-stream");
      }
      for (size_t c = 0; c < chunk->num_columns(); ++c) {
        DistinctColumn& column = distinct[c];
        for (size_t r = 0; r < chunk->num_rows(); ++r) {
          const Value& value = chunk->at(r, c);
          auto [it, inserted] = column.seen.insert(value.ToDisplayString());
          (void)it;
          if (inserted) column.values.push_back(value);
        }
      }
      total_rows += chunk->num_rows();
    }
  }
  if (total_rows == 0) {
    return Status::Invalid("cannot fit on an empty table");
  }

  // The encoder's vocabulary, value-token lists, and error checks depend
  // only on the SET of distinct display strings per column and the order
  // in which they are first seen (TextualEncoder::Build scans
  // column-major with idempotent token insertion). A compact table whose
  // column c lists exactly those distinct values in first-seen order —
  // short columns padded by repeating their last value — therefore builds
  // a bitwise-identical encoder without materializing the input.
  size_t max_distinct = 0;
  for (const DistinctColumn& column : distinct) {
    max_distinct = std::max(max_distinct, column.values.size());
  }
  Table distinct_table(*schema);
  for (size_t r = 0; r < max_distinct; ++r) {
    Row row;
    row.reserve(distinct.size());
    for (const DistinctColumn& column : distinct) {
      if (column.values.empty()) {
        row.push_back(Value::Null());
      } else {
        row.push_back(column.values[std::min(r, column.values.size() - 1)]);
      }
    }
    GREATER_RETURN_NOT_OK(distinct_table.AppendRow(std::move(row)));
  }
  GREATER_ASSIGN_OR_RETURN(
      TextualEncoder encoder,
      TextualEncoder::Build(distinct_table, options_.encoder,
                            options_.prior_corpus));
  encoder_ = std::make_unique<TextualEncoder>(std::move(encoder));

  std::vector<TokenSequence> prior_sequences;
  bool use_prior =
      options_.prior_weight > 0.0 && !options_.prior_corpus.empty();
  if (use_prior) {
    prior_sequences.reserve(options_.prior_corpus.size());
    for (const auto& line : options_.prior_corpus) {
      prior_sequences.push_back(encoder_->EncodeTextLine(line));
    }
  }

  size_t vocab_size = encoder_->vocab().size();
  NGramLm::Options lm_options = options_.ngram;
  if (use_prior) lm_options.prior_weight = options_.prior_weight;
  auto lm = std::make_unique<NGramLm>(vocab_size, lm_options);
  if (use_prior) {
    GREATER_RETURN_NOT_OK(lm->SetPriorCorpus(prior_sequences));
  }

  // Pass B: re-open the source and encode chunk by chunk into the model's
  // sharded counting. One shared rng AND one shared permutation state,
  // both advanced in chunk order, make the feature-permutation stream
  // identical to whole-table EncodeTable (the shuffle mutates the order
  // vector in place across rows, so it must persist across chunks too).
  {
    GREATER_ASSIGN_OR_RETURN(TableChunkStream next_chunk, chunks());
    auto order = std::make_shared<std::vector<size_t>>();
    NGramLm::SequenceChunkIterator encode_next =
        [this, &next_chunk, rng,
         order]() -> Result<std::optional<std::vector<TokenSequence>>> {
      GREATER_ASSIGN_OR_RETURN(std::optional<Table> chunk, next_chunk());
      if (!chunk.has_value()) {
        return std::optional<std::vector<TokenSequence>>();
      }
      GREATER_ASSIGN_OR_RETURN(
          std::vector<TokenSequence> sequences,
          encoder_->EncodeTableWithOrderState(*chunk, rng, order.get()));
      return std::optional<std::vector<TokenSequence>>(std::move(sequences));
    };
    size_t shards = std::max<size_t>(1, options_.num_fit_shards);
    GREATER_RETURN_NOT_OK(lm->FitStreaming(encode_next, shards));
  }
  lm_ = std::move(lm);

  // The observed-value pools dedupe on display string and sort afterwards,
  // so feeding each column's distinct list reproduces the full-table scan.
  observed_values_.clear();
  observed_values_.resize(distinct.size());
  for (size_t c = 0; c < distinct.size(); ++c) {
    for (const Value& value : distinct[c].values) {
      observed_values_[c].Insert(value.ToDisplayString());
    }
    observed_values_[c].SortPool();
  }
  BuildGrammars();
  return Status::OK();
}

void GreatSynthesizer::BuildGrammars() {
  std::unordered_set<TokenId> union_tokens;
  for (const auto& column : encoder_->columns()) {
    union_tokens.insert(column.value_tokens.begin(),
                        column.value_tokens.end());
  }
  all_value_tokens_.assign(union_tokens.begin(), union_tokens.end());
  std::sort(all_value_tokens_.begin(), all_value_tokens_.end());

  // Intern every constrained-decoding allow-list once: per-column value
  // lists, their terminator-admitted variants, and the free-mode union.
  // The interner is read-only from here on, so parallel workers share the
  // stable small-int ids without synchronization.
  AllowListInterner& interner = encoder_->mutable_allow_lists();
  auto build_grammar = [&](const std::vector<TokenId>& values) {
    ValueGrammar grammar;
    grammar.values = values;
    grammar.with_comma = values;
    InsertSorted(&grammar.with_comma, encoder_->comma_token());
    grammar.with_eos = values;
    InsertSorted(&grammar.with_eos, Vocabulary::kEosId);
    grammar.values_id = interner.Intern(grammar.values);
    grammar.with_comma_id = interner.Intern(grammar.with_comma);
    grammar.with_eos_id = interner.Intern(grammar.with_eos);
    return grammar;
  };
  column_grammars_.clear();
  column_grammars_.reserve(encoder_->columns().size());
  for (const auto& column : encoder_->columns()) {
    column_grammars_.push_back(build_grammar(column.value_tokens));
  }
  free_grammar_ = build_grammar(all_value_tokens_);
}

void GreatSynthesizer::InitWorkspace(SamplerWorkspace* ws) const {
  if (options_.decode_cache.enabled && ws->cache == nullptr) {
    ws->cache = std::make_unique<DecodeCache>(options_.decode_cache);
  }
  if (options_.batch_rows > 1 && ws->batch == nullptr) {
    ws->batch = std::make_unique<BatchDecodeEngine>(*this);
  }
  ws->decode.hidden_cache.set_capacity(
      options_.decode_cache.cache_hidden_states
          ? options_.decode_cache.hidden_capacity
          : 0);
}

TokenId GreatSynthesizer::SampleToken(const TokenSequence& context,
                                      const std::vector<TokenId>& allowed,
                                      AllowListId allow_id, Rng* rng,
                                      SamplerWorkspace* ws) const {
  if (ws->cache != nullptr) {
    return ws->cache->SampleRestricted(*lm_, context, allowed, allow_id,
                                       options_.temperature, rng,
                                       &ws->decode);
  }
  return lm_->SampleNext(context, rng, options_.temperature, &allowed,
                         &ws->decode);
}

Result<Row> GreatSynthesizer::SampleRow(
    Rng* rng, const std::map<std::string, Value>* forced) const {
  if (!fitted()) {
    return Status::FailedPrecondition("SampleRow before Fit");
  }
  InitWorkspace(&serial_ws_);
  SampleReport before = stats_;
  Result<Row> row =
      SampleRowImpl(rng, forced, &serial_ws_, &stats_, Span::CurrentId());
  stats_.DeltaSince(before).ExportToMetrics();
  return row;
}

Result<Row> GreatSynthesizer::SampleRowImpl(
    Rng* rng, const std::map<std::string, Value>* forced,
    SamplerWorkspace* ws, SampleReport* stats,
    uint64_t parent_span_id) const {
  Span row_span("synth.row", parent_span_id);
  ScopedTimer row_timer(&RowLatencyHistogram());
  ++stats->rows_requested;
  // Injected per-row failure ("synth.sample_row"): accounted like a
  // natural exhaustion when it carries kResourceExhausted, so lenient
  // callers degrade gracefully and the report still reconciles.
  if (FaultRegistry::AnyArmed()) {
    Status fault = FaultRegistry::Global().Check("synth.sample_row");
    if (!fault.ok()) {
      ++stats->injected_faults;
      if (fault.code() == StatusCode::kResourceExhausted) {
        ++stats->rows_exhausted;
      }
      return fault;
    }
  }
  const auto& columns = encoder_->columns();
  const Schema& schema = encoder_->schema();

  // Resolve forced columns once.
  ws->forced_index.assign(columns.size(), -1);
  ws->forced_values.clear();
  std::vector<int>& forced_index = ws->forced_index;
  std::vector<Value>& forced_values = ws->forced_values;
  if (forced != nullptr) {
    for (const auto& [name, value] : *forced) {
      GREATER_ASSIGN_OR_RETURN(size_t idx, schema.FieldIndex(name));
      forced_index[idx] = static_cast<int>(forced_values.size());
      forced_values.push_back(value);
    }
  }

  Status last_error = Status::OK();
  for (size_t attempt = 0; attempt < options_.max_attempts_per_row;
       ++attempt) {
    ++stats->attempts;
    // In free-value mode the last attempt falls back to the tight grammar
    // so the Sample call cannot die on an unlucky row.
    bool constrain = options_.constrain_values_to_column ||
                     (options_.fallback_to_constrained &&
                      attempt + 1 == options_.max_attempts_per_row);
    if (constrain && !options_.constrain_values_to_column) {
      ++stats->fallback_grammar_uses;
    }
    TokenSequence& context = ws->context;
    context.clear();
    ws->emitted.assign(columns.size(), 0);
    std::vector<char>& emitted = ws->emitted;
    size_t remaining = columns.size();

    // Forced columns are written into the context first (in schema
    // order): they become the conditioning prefix.
    for (size_t c = 0; c < columns.size(); ++c) {
      if (forced_index[c] < 0) continue;
      if (remaining != columns.size()) context.push_back(encoder_->comma_token());
      context.push_back(columns[c].name_token);
      context.push_back(encoder_->is_token());
      std::string text =
          forced_values[static_cast<size_t>(forced_index[c])].ToDisplayString();
      for (TokenId id : encoder_->EncodeTextLine(text)) context.push_back(id);
      emitted[c] = 1;
      --remaining;
    }

    bool failed = false;
    while (remaining > 0 && !failed) {
      if (!context.empty()) context.push_back(encoder_->comma_token());
      // Choose the next column name among the remaining ones. Name tokens
      // were interned in schema order, so this list is strictly ascending
      // and takes the constrained decoder's no-copy fast path.
      std::vector<TokenId>& allowed_names = ws->allowed_names;
      allowed_names.clear();
      for (size_t c = 0; c < columns.size(); ++c) {
        if (!emitted[c]) allowed_names.push_back(columns[c].name_token);
      }
      // Name lists shrink as columns are emitted, so they are interned in
      // the cache's transient namespace (content-addressed, stable within
      // the worker) rather than the encoder's static registry.
      AllowListId names_id = ws->cache != nullptr
                                 ? ws->cache->InternTransient(allowed_names)
                                 : kNoAllowList;
      TokenId name_token =
          SampleToken(context, allowed_names, names_id, rng, ws);
      size_t col = columns.size();
      for (size_t c = 0; c < columns.size(); ++c) {
        if (!emitted[c] && columns[c].name_token == name_token) {
          col = c;
          break;
        }
      }
      if (col == columns.size()) {
        failed = true;
        break;
      }
      context.push_back(name_token);
      context.push_back(encoder_->is_token());

      // Value tokens: constrained to tokens observed in this column (or,
      // in free-value mode, any column), with the terminator admitted once
      // at least one value token was emitted. All three variants were
      // interned at Fit, strictly ascending, so every step is a no-copy
      // draw with an O(1) cache key.
      const ValueGrammar& grammar =
          constrain ? column_grammars_[col] : free_grammar_;
      bool last_column = (remaining == 1);
      size_t value_len = 0;
      bool closed = last_column;  // last column ends at eos
      while (value_len < kMaxValueTokens) {
        const std::vector<TokenId>* step_allowed = &grammar.values;
        AllowListId step_id = grammar.values_id;
        if (value_len > 0) {
          step_allowed =
              last_column ? &grammar.with_eos : &grammar.with_comma;
          step_id =
              last_column ? grammar.with_eos_id : grammar.with_comma_id;
        }
        TokenId next = SampleToken(context, *step_allowed, step_id, rng, ws);
        if (value_len > 0 &&
            (next == encoder_->comma_token() || next == Vocabulary::kEosId)) {
          closed = true;
          break;
        }
        context.push_back(next);
        ++value_len;
      }
      if (value_len == 0 || (!closed && value_len >= kMaxValueTokens)) {
        failed = true;
        break;
      }
      emitted[col] = 1;
      --remaining;
    }
    if (failed) {
      ++stats->rejected_mid_row;
      last_error = Status::DataLoss("generation failed mid-row");
      continue;
    }

    Result<Row> decoded = encoder_->DecodeTokens(context);
    if (!decoded.ok()) {
      ++stats->rejected_decode_failure;
      last_error = decoded.status();
      continue;
    }
    Row row = std::move(decoded).ValueOrDie();

    if (options_.restrict_to_observed) {
      bool valid = true;
      for (size_t c = 0; c < columns.size(); ++c) {
        if (forced_index[c] >= 0) continue;
        if (observed_values_[c].set.count(row[c].ToDisplayString()) == 0) {
          if (attempt + 1 == options_.max_attempts_per_row &&
              options_.fallback_to_constrained) {
            // Last resort: snap the cell to a uniformly drawn observed
            // value so one stubborn multi-token recombination cannot fail
            // the whole Sample call. The draw indexes the sorted pool, so
            // it maps picks to values identically after a Save/Load
            // rebuild.
            const auto& pool = observed_values_[c].sorted;
            const std::string& snapped = pool[rng->Index(pool.size())];
            GREATER_ASSIGN_OR_RETURN(row[c], encoder_->ParseValue(c, snapped));
            ++stats->snapped_cells;
            continue;
          }
          valid = false;
          break;
        }
      }
      if (!valid) {
        ++stats->rejected_invalid_value;
        last_error = Status::DataLoss("generated value outside the observed "
                                      "category set");
        continue;
      }
    }
    // Forced values override whatever round-tripped through tokens (they
    // may contain words outside the vocabulary).
    for (size_t c = 0; c < columns.size(); ++c) {
      if (forced_index[c] >= 0) {
        row[c] = forced_values[static_cast<size_t>(forced_index[c])];
      }
    }
    ++stats->rows_emitted;
    return row;
  }
  ++stats->rows_exhausted;
  return Status::ResourceExhausted(
      "no valid row after " + std::to_string(options_.max_attempts_per_row) +
      " attempts; last error: " + last_error.ToString());
}

uint64_t GreatSynthesizer::DeriveSampleBase(Rng* rng) {
  uint64_t base_a = rng->engine()();
  uint64_t base_b = rng->engine()();
  return base_a ^ (base_b * 0x2545F4914F6CDD1DULL + 0x9e3779b97f4a7c15ULL);
}

Result<Table> GreatSynthesizer::SampleMany(size_t n, const Table* conditions,
                                           Rng* rng, ThreadPool* pool,
                                           SampleReport* report,
                                           SamplePolicy policy) const {
  auto context_for = [&](size_t i) {
    return std::string(conditions != nullptr ? "sampling conditioned row "
                                             : "sampling row ") +
           std::to_string(i + 1) + " of " + std::to_string(n);
  };
  // Captured before any dispatch: pool workers have no view of this
  // thread's span stack, so per-row spans take their parent explicitly.
  const uint64_t parent_span = Span::CurrentId();

  // One base draw (fixed Rng advance regardless of worker count or batch
  // size), then row i samples from the private stream seeded with
  // DeriveStreamSeed(base, i). Because every draw a row makes comes from
  // its own stream, the output is invariant to how rows are scheduled —
  // serial, pooled, per-row or lockstep-batched — which is the whole
  // determinism contract: identical tables at any (num_threads,
  // batch_rows) for a fixed seed.
  uint64_t base = 0;
  if (n > 0) {
    base = DeriveSampleBase(rng);
  }
  const size_t batch = std::max<size_t>(1, options_.batch_rows);

  // Samples rows [begin, end), appending one Result<Row> per row to
  // `rows`: lockstep chunks through the workspace's batch engine when
  // batch_rows > 1, the per-row reference decoder otherwise.
  auto sample_range = [&](size_t begin, size_t end, SamplerWorkspace* ws,
                          SampleReport* stats,
                          std::vector<Result<Row>>* rows) {
    if (ws->batch != nullptr) {
      for (size_t chunk = begin; chunk < end; chunk += batch) {
        size_t chunk_end = std::min(end, chunk + batch);
        ws->batch->RunChunk(chunk, chunk_end, conditions, base,
                            ws->cache.get(), &ws->decode, stats, parent_span,
                            rows);
      }
      return;
    }
    std::map<std::string, Value> forced;
    for (size_t i = begin; i < end; ++i) {
      Rng row_rng(Rng::DeriveStreamSeed(base, i));
      const std::map<std::string, Value>* forced_ptr = nullptr;
      if (conditions != nullptr) {
        forced.clear();
        for (size_t c = 0; c < conditions->num_columns(); ++c) {
          forced[conditions->schema().field(c).name] = conditions->at(i, c);
        }
        forced_ptr = &forced;
      }
      rows->push_back(
          SampleRowImpl(&row_rng, forced_ptr, ws, stats, parent_span));
    }
  };

  // Output assembly is columnar: decoded cells append straight into
  // per-column storage reserved once for all n rows.
  TableBuilder builder(encoder_->schema());
  builder.Reserve(n);
  size_t workers = pool != nullptr ? std::min(pool->num_workers(), n) : 1;
  if (workers <= 1 || n <= 1) {
    // Serial path: one chunk at a time, stopping at the first failure a
    // strict policy surfaces (rows in later chunks are never attempted,
    // exactly like the per-row loop this generalizes).
    SampleReport before = stats_;
    InitWorkspace(&serial_ws_);
    std::vector<Result<Row>> rows;
    for (size_t chunk_begin = 0; chunk_begin < n; chunk_begin += batch) {
      size_t chunk_end = std::min(n, chunk_begin + batch);
      rows.clear();
      sample_range(chunk_begin, chunk_end, &serial_ws_, &stats_, &rows);
      for (size_t k = 0; k < rows.size(); ++k) {
        Result<Row>& row = rows[k];
        if (!row.ok()) {
          if (policy == SamplePolicy::kLenient &&
              row.status().code() == StatusCode::kResourceExhausted) {
            continue;  // degrade: keep what succeeded, account for the rest
          }
          SampleReport delta = stats_.DeltaSince(before);
          delta.ExportToMetrics();
          if (report) report->Merge(delta);
          return row.status().WithContext(context_for(chunk_begin + k));
        }
        GREATER_RETURN_NOT_OK(
            builder.AppendRow(std::move(row).ValueOrDie()));
      }
    }
    SampleReport delta = stats_.DeltaSince(before);
    delta.ExportToMetrics();
    if (report) report->Merge(delta);
    return builder.Build();
  }

  // Parallel path: worker w samples its contiguous row range (each row
  // still on its own derived stream). Every row is attempted even if an
  // earlier one fails, so under strict policy the report covers all n rows
  // while the returned error is the one the serial path would have hit
  // first.
  struct WorkerOutput {
    std::vector<Result<Row>> rows;
    SampleReport report;
  };
  std::vector<WorkerOutput> outputs(workers);
  pool->ParallelFor(n, workers, [&](size_t shard, size_t begin, size_t end) {
    SamplerWorkspace ws;  // private decode cache + batch engine per worker
    InitWorkspace(&ws);
    WorkerOutput& output = outputs[shard];
    output.rows.reserve(end - begin);
    sample_range(begin, end, &ws, &output.report, &output.rows);
  });

  SampleReport delta;
  for (const WorkerOutput& output : outputs) delta.Merge(output.report);
  stats_.Merge(delta);
  delta.ExportToMetrics();
  if (report) report->Merge(delta);
  size_t row_index = 0;
  for (WorkerOutput& output : outputs) {
    for (Result<Row>& row : output.rows) {
      size_t i = row_index++;
      if (!row.ok()) {
        if (policy == SamplePolicy::kLenient &&
            row.status().code() == StatusCode::kResourceExhausted) {
          continue;
        }
        return row.status().WithContext(context_for(i));
      }
      GREATER_RETURN_NOT_OK(builder.AppendRow(std::move(row).ValueOrDie()));
    }
  }
  return builder.Build();
}

Result<Table> GreatSynthesizer::Sample(size_t n, Rng* rng,
                                       SampleReport* report) const {
  return SampleWithPolicy(n, options_.policy, rng, report);
}

Result<Table> GreatSynthesizer::SampleWithPolicy(size_t n,
                                                 SamplePolicy policy,
                                                 Rng* rng,
                                                 SampleReport* report) const {
  if (!fitted()) {
    return Status::FailedPrecondition("Sample before Fit");
  }
  if (options_.num_threads > 1 && n > 1) {
    ThreadPool pool(options_.num_threads);
    return SampleMany(n, nullptr, rng, &pool, report, policy);
  }
  return SampleMany(n, nullptr, rng, nullptr, report, policy);
}

Result<Table> GreatSynthesizer::SampleRows(size_t n, Rng* rng,
                                           ThreadPool* pool,
                                           SampleReport* report) const {
  if (!fitted()) {
    return Status::FailedPrecondition("SampleRows before Fit");
  }
  return SampleMany(n, nullptr, rng, pool, report, options_.policy);
}

Result<Table> GreatSynthesizer::SampleConditional(const Table& conditions,
                                                  Rng* rng,
                                                  SampleReport* report) const {
  return SampleConditionalWithPolicy(conditions, options_.policy, rng,
                                     report);
}

Result<Table> GreatSynthesizer::SampleConditionalWithPolicy(
    const Table& conditions, SamplePolicy policy, Rng* rng,
    SampleReport* report) const {
  if (!fitted()) {
    return Status::FailedPrecondition("SampleConditional before Fit");
  }
  size_t n = conditions.num_rows();
  if (options_.num_threads > 1 && n > 1) {
    ThreadPool pool(options_.num_threads);
    return SampleMany(n, &conditions, rng, &pool, report, policy);
  }
  return SampleMany(n, &conditions, rng, nullptr, report, policy);
}

namespace {

constexpr char kSynthesizerKind[] = "greater.great_synthesizer";
// v2: appended batch_rows to the options codec.
constexpr uint32_t kSynthesizerVersion = 2;

void AppendOptions(const GreatSynthesizer::Options& o, ByteWriter* w) {
  w->PutU8(static_cast<uint8_t>(o.backbone));
  w->PutU64(o.ngram.order);
  w->PutF64(o.ngram.prior_weight);
  w->PutU64(o.neural.context_window);
  w->PutU64(o.neural.embed_dim);
  w->PutU64(o.neural.hidden_dim);
  w->PutU64(o.neural.epochs);
  w->PutU64(o.neural.batch_size);
  w->PutF64(o.neural.learning_rate);
  w->PutU64(o.neural.pretrain_epochs);
  w->PutU64(o.neural.seed);
  w->PutU64(o.neural.num_threads);
  w->PutU64(o.encoder.permutations_per_row);
  w->PutBool(o.encoder.permute_features);
  w->PutF64(o.temperature);
  w->PutBool(o.restrict_to_observed);
  w->PutBool(o.constrain_values_to_column);
  w->PutBool(o.fallback_to_constrained);
  w->PutU64(o.max_attempts_per_row);
  w->PutU8(static_cast<uint8_t>(o.policy));
  w->PutU32(static_cast<uint32_t>(o.prior_corpus.size()));
  for (const std::string& line : o.prior_corpus) w->PutString(line);
  w->PutF64(o.prior_weight);
  w->PutU64(o.max_training_sequences);
  w->PutU64(o.num_threads);
  w->PutBool(o.decode_cache.enabled);
  w->PutU64(o.decode_cache.capacity);
  w->PutU8(static_cast<uint8_t>(o.decode_cache.mode));
  w->PutBool(o.decode_cache.cache_hidden_states);
  w->PutU64(o.decode_cache.hidden_capacity);
  w->PutU64(o.batch_rows);
}

Status ReadOptions(ByteReader* r, GreatSynthesizer::Options* o) {
  uint8_t backbone = 0;
  GREATER_RETURN_NOT_OK(r->GetU8(&backbone));
  if (backbone > static_cast<uint8_t>(GreatSynthesizer::Backbone::kNeural)) {
    return Status::DataLoss("corrupt synthesizer options: unknown backbone " +
                            std::to_string(backbone));
  }
  o->backbone = static_cast<GreatSynthesizer::Backbone>(backbone);
  GREATER_RETURN_NOT_OK(r->GetU64(&o->ngram.order));
  GREATER_RETURN_NOT_OK(r->GetF64(&o->ngram.prior_weight));
  GREATER_RETURN_NOT_OK(r->GetU64(&o->neural.context_window));
  GREATER_RETURN_NOT_OK(r->GetU64(&o->neural.embed_dim));
  GREATER_RETURN_NOT_OK(r->GetU64(&o->neural.hidden_dim));
  GREATER_RETURN_NOT_OK(r->GetU64(&o->neural.epochs));
  GREATER_RETURN_NOT_OK(r->GetU64(&o->neural.batch_size));
  GREATER_RETURN_NOT_OK(r->GetF64(&o->neural.learning_rate));
  GREATER_RETURN_NOT_OK(r->GetU64(&o->neural.pretrain_epochs));
  GREATER_RETURN_NOT_OK(r->GetU64(&o->neural.seed));
  GREATER_RETURN_NOT_OK(r->GetU64(&o->neural.num_threads));
  GREATER_RETURN_NOT_OK(r->GetU64(&o->encoder.permutations_per_row));
  GREATER_RETURN_NOT_OK(r->GetBool(&o->encoder.permute_features));
  GREATER_RETURN_NOT_OK(r->GetF64(&o->temperature));
  GREATER_RETURN_NOT_OK(r->GetBool(&o->restrict_to_observed));
  GREATER_RETURN_NOT_OK(r->GetBool(&o->constrain_values_to_column));
  GREATER_RETURN_NOT_OK(r->GetBool(&o->fallback_to_constrained));
  GREATER_RETURN_NOT_OK(r->GetU64(&o->max_attempts_per_row));
  uint8_t policy = 0;
  GREATER_RETURN_NOT_OK(r->GetU8(&policy));
  if (policy > static_cast<uint8_t>(SamplePolicy::kLenient)) {
    return Status::DataLoss("corrupt synthesizer options: unknown policy " +
                            std::to_string(policy));
  }
  o->policy = static_cast<SamplePolicy>(policy);
  uint32_t prior_lines = 0;
  GREATER_RETURN_NOT_OK(r->GetU32(&prior_lines));
  o->prior_corpus.clear();
  o->prior_corpus.reserve(prior_lines);
  for (uint32_t i = 0; i < prior_lines; ++i) {
    std::string line;
    GREATER_RETURN_NOT_OK(r->GetString(&line));
    o->prior_corpus.push_back(std::move(line));
  }
  GREATER_RETURN_NOT_OK(r->GetF64(&o->prior_weight));
  GREATER_RETURN_NOT_OK(r->GetU64(&o->max_training_sequences));
  GREATER_RETURN_NOT_OK(r->GetU64(&o->num_threads));
  GREATER_RETURN_NOT_OK(r->GetBool(&o->decode_cache.enabled));
  GREATER_RETURN_NOT_OK(r->GetU64(&o->decode_cache.capacity));
  uint8_t mode = 0;
  GREATER_RETURN_NOT_OK(r->GetU8(&mode));
  if (mode > static_cast<uint8_t>(DecodeMode::kAlias)) {
    return Status::DataLoss(
        "corrupt synthesizer options: unknown decode mode " +
        std::to_string(mode));
  }
  o->decode_cache.mode = static_cast<DecodeMode>(mode);
  GREATER_RETURN_NOT_OK(r->GetBool(&o->decode_cache.cache_hidden_states));
  GREATER_RETURN_NOT_OK(r->GetU64(&o->decode_cache.hidden_capacity));
  GREATER_RETURN_NOT_OK(r->GetU64(&o->batch_rows));
  return Status::OK();
}

}  // namespace

void GreatSynthesizer::AppendOptionsTo(const Options& options,
                                       ByteWriter* w) {
  AppendOptions(options, w);
}

Status GreatSynthesizer::ReadOptionsFrom(ByteReader* r, Options* options) {
  return ReadOptions(r, options);
}

Result<std::string> GreatSynthesizer::SerializeBinary() const {
  if (!fitted()) {
    return Status::FailedPrecondition(
        "cannot serialize an unfitted synthesizer");
  }
  ArtifactWriter doc(kSynthesizerKind, kSynthesizerVersion);
  {
    ByteWriter w;
    AppendOptions(options_, &w);
    doc.AddChunk("options", std::move(w).Take());
  }
  doc.AddChunk("encoder", encoder_->SerializeBinary());
  switch (options_.backbone) {
    case Backbone::kNGram:
      doc.AddChunk("lm",
                   static_cast<const NGramLm*>(lm_.get())->SerializeBinary());
      break;
    case Backbone::kNeural:
      doc.AddChunk(
          "lm", static_cast<const NeuralLm*>(lm_.get())->SerializeBinary());
      break;
  }
  {
    ByteWriter w;
    w.PutU32(static_cast<uint32_t>(observed_values_.size()));
    for (const ObservedColumn& column : observed_values_) {
      w.PutU32(static_cast<uint32_t>(column.sorted.size()));
      for (const std::string& value : column.sorted) w.PutString(value);
    }
    doc.AddChunk("observed", std::move(w).Take());
  }
  return doc.Finish();
}

Status GreatSynthesizer::DeserializeBinary(std::string_view bytes) {
  GREATER_ASSIGN_OR_RETURN(
      ArtifactReader doc,
      ArtifactReader::Parse(std::string(bytes), kSynthesizerKind,
                            kSynthesizerVersion));
  Options options;
  {
    GREATER_ASSIGN_OR_RETURN(std::string_view payload, doc.Chunk("options"));
    ByteReader r(payload);
    GREATER_RETURN_NOT_OK_CTX(ReadOptions(&r, &options),
                              "synthesizer options");
    GREATER_RETURN_NOT_OK(r.ExpectEnd());
  }
  auto encoder = std::make_unique<TextualEncoder>();
  {
    GREATER_ASSIGN_OR_RETURN(std::string_view payload, doc.Chunk("encoder"));
    GREATER_RETURN_NOT_OK_CTX(encoder->DeserializeBinary(payload),
                              "synthesizer encoder");
  }
  std::unique_ptr<LanguageModel> lm;
  {
    GREATER_ASSIGN_OR_RETURN(std::string_view payload, doc.Chunk("lm"));
    switch (options.backbone) {
      case Backbone::kNGram: {
        auto ngram = std::make_unique<NGramLm>(1);
        GREATER_RETURN_NOT_OK_CTX(ngram->DeserializeBinary(payload),
                                  "synthesizer n-gram LM");
        lm = std::move(ngram);
        break;
      }
      case Backbone::kNeural: {
        // Cheap throwaway shape: DeserializeBinary overwrites everything,
        // so the constructor's parameter init should touch as little
        // memory as possible.
        NeuralLm::Options tiny;
        tiny.context_window = 1;
        tiny.embed_dim = 1;
        tiny.hidden_dim = 1;
        auto neural = std::make_unique<NeuralLm>(1, tiny);
        GREATER_RETURN_NOT_OK_CTX(neural->DeserializeBinary(payload),
                                  "synthesizer neural LM");
        lm = std::move(neural);
        break;
      }
    }
  }
  std::vector<ObservedColumn> observed;
  {
    GREATER_ASSIGN_OR_RETURN(std::string_view payload, doc.Chunk("observed"));
    ByteReader r(payload);
    uint32_t num_columns = 0;
    GREATER_RETURN_NOT_OK(r.GetU32(&num_columns));
    if (num_columns != encoder->schema().num_fields()) {
      return Status::DataLoss(
          "corrupt synthesizer: observed-value pools cover " +
          std::to_string(num_columns) + " columns, encoder has " +
          std::to_string(encoder->schema().num_fields()));
    }
    observed.resize(num_columns);
    for (uint32_t c = 0; c < num_columns; ++c) {
      uint32_t num_values = 0;
      GREATER_RETURN_NOT_OK(r.GetU32(&num_values));
      for (uint32_t i = 0; i < num_values; ++i) {
        std::string value;
        GREATER_RETURN_NOT_OK(r.GetString(&value));
        observed[c].Insert(value);
      }
      if (!std::is_sorted(observed[c].sorted.begin(),
                          observed[c].sorted.end())) {
        return Status::DataLoss(
            "corrupt synthesizer: observed pool of column " +
            std::to_string(c) + " is not sorted");
      }
    }
    GREATER_RETURN_NOT_OK(r.ExpectEnd());
  }

  options_ = std::move(options);
  encoder_ = std::move(encoder);
  lm_ = std::move(lm);
  observed_values_ = std::move(observed);
  BuildGrammars();
  serial_ws_ = SamplerWorkspace();
  stats_ = SampleReport();
  return Status::OK();
}

Status GreatSynthesizer::Save(const std::string& path) const {
  GREATER_ASSIGN_OR_RETURN_CTX(std::string bytes, SerializeBinary(),
                               "saving synthesizer to '" + path + "'");
  return AtomicWriteFile(path, bytes)
      .WithContext("saving synthesizer to '" + path + "'");
}

Status GreatSynthesizer::Load(const std::string& path) {
  GREATER_ASSIGN_OR_RETURN_CTX(std::string bytes, ReadFileBytes(path),
                               "loading synthesizer from '" + path + "'");
  return DeserializeBinary(bytes)
      .WithContext("loading synthesizer from '" + path + "'");
}

Result<double> GreatSynthesizer::EvaluatePerplexity(
    const Table& held_out) const {
  if (!fitted()) {
    return Status::FailedPrecondition("EvaluatePerplexity before Fit");
  }
  // Encode with this synthesizer's encoder in fixed schema order.
  std::vector<TokenSequence> sequences;
  std::vector<size_t> order(held_out.num_columns());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (size_t r = 0; r < held_out.num_rows(); ++r) {
    sequences.push_back(encoder_->EncodeRow(held_out.GetRow(r), order));
  }
  return lm_->Perplexity(sequences);
}

}  // namespace greater
