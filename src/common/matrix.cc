#include "common/matrix.h"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace greater {

Matrix Matrix::MatMul(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      double a = (*this)(i, k);
      if (a == 0.0) continue;
      const double* brow = other.RowPtr(k);
      double* orow = out.RowPtr(i);
      for (size_t j = 0; j < other.cols_; ++j) orow[j] += a * brow[j];
    }
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  }
  return out;
}

void Matrix::AddScaled(const Matrix& other, double scale) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += scale * other.data_[i];
}

double Matrix::FrobeniusNorm() const {
  double sum = 0.0;
  for (double v : data_) sum += v * v;
  return std::sqrt(sum);
}

std::string Matrix::ToString(int precision) const {
  std::string out;
  char buf[64];
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) {
      std::snprintf(buf, sizeof(buf), "%s%.*f", j == 0 ? "" : " ", precision,
                    (*this)(i, j));
      out += buf;
    }
    out += '\n';
  }
  return out;
}

}  // namespace greater
