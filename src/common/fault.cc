#include "common/fault.h"

#include "obs/metrics.h"

namespace greater {

std::atomic<size_t> FaultRegistry::armed_count_{0};

FaultRegistry& FaultRegistry::Global() {
  static FaultRegistry* registry = new FaultRegistry();
  return *registry;
}

void FaultRegistry::Arm(const std::string& point, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry entry;
  entry.rng.seed(spec.seed);
  entry.spec = std::move(spec);
  auto [it, inserted] = entries_.insert_or_assign(point, std::move(entry));
  (void)it;
  if (inserted) armed_count_.fetch_add(1, std::memory_order_relaxed);
}

void FaultRegistry::Disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.erase(point) > 0) {
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FaultRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_count_.fetch_sub(entries_.size(), std::memory_order_relaxed);
  entries_.clear();
}

size_t FaultRegistry::hits(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(point);
  return it == entries_.end() ? 0 : it->second.hits;
}

size_t FaultRegistry::fires(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(point);
  return it == entries_.end() ? 0 : it->second.fires;
}

Status FaultRegistry::Check(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(point);
  if (it == entries_.end()) return Status::OK();
  Entry& entry = it->second;
  ++entry.hits;
  if (entry.hits <= entry.spec.skip_hits) return Status::OK();
  if (entry.fires >= entry.spec.max_fires) return Status::OK();
  if (entry.spec.probability < 1.0) {
    std::uniform_real_distribution<double> uniform(0.0, 1.0);
    if (uniform(entry.rng) >= entry.spec.probability) return Status::OK();
  }
  ++entry.fires;
  // Fires are rare (tests only), so the registry map lookups are fine.
  MetricsRegistry::Global().GetCounter("fault.trips").Increment();
  MetricsRegistry::Global().GetCounter("fault.trips." + point).Increment();
  std::string message = entry.spec.message.empty()
                            ? "injected fault at '" + point + "'"
                            : entry.spec.message;
  Status injected(entry.spec.code, std::move(message));
  if (entry.spec.retry_after_ms > 0) {
    injected = injected.WithRetryAfter(entry.spec.retry_after_ms);
  }
  return injected;
}

}  // namespace greater
