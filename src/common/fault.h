#ifndef GREATER_COMMON_FAULT_H_
#define GREATER_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <random>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/status.h"

namespace greater {

/// Deterministic fault injection for robustness testing.
///
/// Library code marks recoverable failure sites with named fault points:
///
///   Status Fit(...) {
///     GREATER_FAULT_POINT("lm.fit");
///     ...
///   }
///
/// Tests arm a point with a FaultSpec (status code, count trigger, or
/// seeded probability trigger) through the global FaultRegistry; the next
/// matching execution of the point returns the injected Status exactly as
/// if the guarded operation had failed. When nothing is armed the macro is
/// a single relaxed atomic load and a predictable branch — safe to leave
/// in release builds.
///
/// Registered points in this repo (see DESIGN.md "Failure model"):
///   "csv.read"          ReadCsvString entry
///   "lm.fit"            GreatSynthesizer::Fit, before the LM trains
///   "synth.sample_row"  GreatSynthesizer::SampleRow, once per row
///   "pipeline.flatten"  DirectFlatten entry
///   "pipeline.reduce"   RemoveAndReduce entry
///   "ckpt.write"        AtomicWriteFile, before any filesystem mutation
///   "ckpt.read"         ReadFileBytes entry (artifact/checkpoint loads)
///   "stream.queue_full"   BoundedQueue::Push while the queue is full,
///                         before the producer blocks (backpressure path)
///   "stream.chunk_parse"  streaming CSV ingest, once per parsed chunk
///   "stream.worker_death" streaming stage worker: the worker stops
///                         heartbeating and exits without reporting, so
///                         only the watchdog can detect it (also honored
///                         by serving-layer sampler workers)
///   "serve.admit"         SynthesisServer::Submit, per request: a fired
///                         fault rejects that request typed before it
///                         enters the admission queue
///   "serve.pack"          serving packing sweep, once per request as its
///                         first lanes are packed: the tripped request
///                         fails typed, co-scheduled requests proceed
///   "serve.evict"         memory-pressure eviction sweep, once per
///                         eviction candidate: a fired fault aborts the
///                         sweep, leaving the bundle resident (models a
///                         pinned or unevictable bundle)
///   "serve.reload"        evicted-bundle reload on the tenant's next
///                         request: the submit that needed the reload
///                         fails typed; the bundle stays evicted
struct FaultSpec {
  static constexpr size_t kUnlimited = static_cast<size_t>(-1);

  /// Status code the injected failure carries.
  StatusCode code = StatusCode::kInternal;
  /// Error message; empty -> "injected fault at '<point>'".
  std::string message;
  /// When > 0, the injected Status carries this retry-after hint
  /// (Status::WithRetryAfter) — lets tests exercise hint-honoring backoff
  /// paths without a real overloaded server.
  uint64_t retry_after_ms = 0;
  /// Number of hits that pass through before the point becomes eligible.
  size_t skip_hits = 0;
  /// Maximum number of times the point fires; further hits pass through.
  size_t max_fires = kUnlimited;
  /// Chance an eligible hit fires. Draws come from a generator seeded with
  /// `seed`, so a given spec produces the same fire pattern on every run.
  double probability = 1.0;
  uint64_t seed = 0;
};

class FaultRegistry {
 public:
  /// The process-wide registry used by GREATER_FAULT_POINT.
  static FaultRegistry& Global();

  /// Arms (or re-arms, resetting counters) a named fault point.
  void Arm(const std::string& point, FaultSpec spec = FaultSpec());

  /// Disarms one point; unknown names are a no-op.
  void Disarm(const std::string& point);

  /// Disarms everything. Tests call this in teardown.
  void DisarmAll();

  /// Times an armed point was reached / actually fired. Both are zero for
  /// unarmed points (hits are not tracked while disarmed).
  size_t hits(const std::string& point) const;
  size_t fires(const std::string& point) const;

  /// Evaluates a fault point: returns the injected error if `point` is
  /// armed and its trigger fires, OK otherwise.
  Status Check(const std::string& point);

  /// True when any point in any registry is armed. Lock-free fast path for
  /// the GREATER_FAULT_POINT macro.
  static bool AnyArmed() {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

 private:
  struct Entry {
    FaultSpec spec;
    size_t hits = 0;
    size_t fires = 0;
    std::mt19937_64 rng;
  };

  static std::atomic<size_t> armed_count_;

  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
};

/// Arms a fault point for the lifetime of a scope (RAII test helper).
class ScopedFault {
 public:
  explicit ScopedFault(std::string point, FaultSpec spec = FaultSpec())
      : point_(std::move(point)) {
    FaultRegistry::Global().Arm(point_, std::move(spec));
  }
  ~ScopedFault() { FaultRegistry::Global().Disarm(point_); }

  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

  const std::string& point() const { return point_; }

 private:
  std::string point_;
};

/// Evaluates the named fault point, returning the injected Status from the
/// enclosing function when it fires. Compiles to an unarmed-branch no-op
/// when no fault is armed anywhere.
#define GREATER_FAULT_POINT(point)                         \
  do {                                                     \
    if (::greater::FaultRegistry::AnyArmed()) {            \
      ::greater::Status _greater_fault =                   \
          ::greater::FaultRegistry::Global().Check(point); \
      if (!_greater_fault.ok()) return _greater_fault;     \
    }                                                      \
  } while (0)

}  // namespace greater

#endif  // GREATER_COMMON_FAULT_H_
