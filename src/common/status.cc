#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace greater {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

Status Status::WithContext(std::string context) const {
  if (ok()) return *this;
  Status annotated = *this;
  annotated.context_.push_back(std::move(context));
  return annotated;
}

Status Status::WithRetryAfter(uint64_t retry_after_ms) const {
  if (ok()) return *this;
  Status hinted = *this;
  hinted.retry_after_ms_ = retry_after_ms;
  return hinted;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  if (retry_after_ms_.has_value()) {
    out += " (retry after " + std::to_string(*retry_after_ms_) + " ms)";
  }
  for (const std::string& frame : context_) {
    out += "; while ";
    out += frame;
  }
  return out;
}

namespace internal {

void DieOnBadResult(const Status& status) {
  std::fprintf(stderr, "ValueOrDie called on an error Result: %s\n",
               status.ToString().c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal

}  // namespace greater
