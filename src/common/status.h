#ifndef GREATER_COMMON_STATUS_H_
#define GREATER_COMMON_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace greater {

/// Error categories used across the library. Mirrors the small set of
/// failure modes a tabular-synthesis pipeline can hit.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< caller passed something malformed
  kNotFound,          ///< a named column/value/key does not exist
  kAlreadyExists,     ///< uniqueness violated (e.g. duplicate column name)
  kOutOfRange,        ///< index or parameter outside its domain
  kFailedPrecondition,///< object not in the required state (e.g. unfitted model)
  kDataLoss,          ///< parse failure / corrupted input
  kResourceExhausted, ///< retry/sampling budget exceeded
  kInternal,          ///< invariant violation inside the library
  kDeadlineExceeded,  ///< a bounded wait expired (hung stage, stalled worker)
  kCancelled,         ///< the caller abandoned the operation mid-flight
};

/// Human-readable name of a StatusCode (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// Arrow-style status object. Fallible operations in this library return
/// Status (or Result<T>) instead of throwing across API boundaries.
///
/// Usage:
///   Status s = table.AppendRow(row);
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status Invalid(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Returns a copy carrying a retry-after hint: the producer's estimate of
  /// how long the caller should back off before resubmitting. Attached by
  /// admission-control rejections (per-tenant quota, load shedding) so
  /// clients can pace themselves instead of hammering an overloaded
  /// server; honored by RecoverySupervisor in place of its own backoff
  /// schedule. OK statuses pass through unchanged. The hint survives
  /// WithContext (provenance frames copy the whole payload).
  Status WithRetryAfter(uint64_t retry_after_ms) const;

  /// The retry-after hint, if the producer attached one.
  std::optional<uint64_t> retry_after_ms() const { return retry_after_ms_; }

  /// Returns a copy with `context` appended to the provenance chain. Each
  /// propagation layer adds one frame (innermost first), so a failure deep
  /// inside a pipeline reports the whole path it bubbled through:
  ///
  ///   return status.WithContext("stage 'fit' (table 'fused')");
  ///
  /// OK statuses pass through unchanged.
  Status WithContext(std::string context) const;

  /// Provenance frames added by WithContext, innermost first.
  const std::vector<std::string>& context() const { return context_; }

  /// "OK" or "<CodeName>: <message>", followed by "; while <frame>" for
  /// every context frame (innermost first).
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_ &&
           context_ == other.context_ &&
           retry_after_ms_ == other.retry_after_ms_;
  }

 private:
  StatusCode code_;
  std::string message_;
  std::vector<std::string> context_;
  std::optional<uint64_t> retry_after_ms_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

namespace internal {
/// Reports `status` on stderr and aborts. Called by Result<T>::ValueOrDie
/// on an error-holding Result, where dereferencing the empty optional
/// would otherwise be undefined behaviour.
[[noreturn]] void DieOnBadResult(const Status& status);
}  // namespace internal

/// Result<T> carries either a value or a non-OK Status.
///
/// Usage:
///   Result<Table> r = Table::FromCsv(path);
///   if (!r.ok()) return r.status();
///   Table t = std::move(r).ValueOrDie();
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return value;` in Result-returning code.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from error status: allows `return Status::Invalid(...)`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    // A Result constructed from a Status must carry an error; an OK status
    // with no value would be unusable.
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Returns the contained value; aborts with the carried status message
  /// if this Result holds an error.
  const T& ValueOrDie() const& {
    if (!ok()) internal::DieOnBadResult(status_);
    return *value_;
  }
  T& ValueOrDie() & {
    if (!ok()) internal::DieOnBadResult(status_);
    return *value_;
  }
  T ValueOrDie() && {
    if (!ok()) internal::DieOnBadResult(status_);
    return std::move(*value_);
  }

  /// Alias matching std::expected-style spelling.
  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  /// Returns the value, or `fallback` if this Result holds an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK iff value_ holds a value
  std::optional<T> value_;
};

/// Propagates a non-OK Status from an expression. For use inside functions
/// that themselves return Status or Result<T>.
#define GREATER_RETURN_NOT_OK(expr)                  \
  do {                                               \
    ::greater::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                       \
  } while (0)

/// Like GREATER_RETURN_NOT_OK, but annotates a propagated error with a
/// provenance frame (see Status::WithContext). `ctx` may be any expression
/// convertible to std::string; it is only evaluated on failure.
#define GREATER_RETURN_NOT_OK_CTX(expr, ctx)         \
  do {                                               \
    ::greater::Status _st = (expr);                  \
    if (!_st.ok()) return _st.WithContext(ctx);      \
  } while (0)

/// Evaluates a Result<T> expression, propagating errors, else binds `lhs`.
#define GREATER_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).ValueOrDie();

#define GREATER_CONCAT_INNER(a, b) a##b
#define GREATER_CONCAT(a, b) GREATER_CONCAT_INNER(a, b)

#define GREATER_ASSIGN_OR_RETURN(lhs, expr)          \
  GREATER_ASSIGN_OR_RETURN_IMPL(                     \
      GREATER_CONCAT(_greater_result_, __LINE__), lhs, expr)

/// GREATER_ASSIGN_OR_RETURN with a provenance frame on the error path.
#define GREATER_ASSIGN_OR_RETURN_CTX_IMPL(tmp, lhs, expr, ctx) \
  auto tmp = (expr);                                           \
  if (!tmp.ok()) return tmp.status().WithContext(ctx);         \
  lhs = std::move(tmp).ValueOrDie();

#define GREATER_ASSIGN_OR_RETURN_CTX(lhs, expr, ctx) \
  GREATER_ASSIGN_OR_RETURN_CTX_IMPL(                 \
      GREATER_CONCAT(_greater_result_, __LINE__), lhs, expr, ctx)

}  // namespace greater

#endif  // GREATER_COMMON_STATUS_H_
