#ifndef GREATER_COMMON_STRINGS_H_
#define GREATER_COMMON_STRINGS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace greater {

/// Splits `text` on `delim`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view text, char delim);

/// Splits on `delim` but drops empty fields.
std::vector<std::string> SplitSkipEmpty(std::string_view text, char delim);

/// Splits on any whitespace run, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Joins `parts` with `sep` between elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading/trailing ASCII whitespace.
std::string Strip(std::string_view text);

/// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// True if `text` ends with `suffix`.
bool EndsWith(std::string_view text, std::string_view suffix);

/// Lowercases ASCII letters.
std::string ToLower(std::string_view text);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view text, std::string_view from,
                       std::string_view to);

/// Strict int64 parse of the whole string; nullopt on any trailing junk.
std::optional<int64_t> ParseInt(std::string_view text);

/// Strict double parse of the whole string; nullopt on any trailing junk.
std::optional<double> ParseDouble(std::string_view text);

/// Formats a double the way table cells are rendered: integral values
/// without a decimal point ("3" not "3.000000"), otherwise shortest
/// round-trip representation.
std::string FormatDouble(double value);

}  // namespace greater

#endif  // GREATER_COMMON_STRINGS_H_
