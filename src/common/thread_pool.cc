#include "common/thread_pool.h"

#include <algorithm>
#include <exception>
#include <utility>

#include "obs/metrics.h"

namespace greater {
namespace {

// Pool-wide dispatch accounting, published once per ParallelFor — on every
// path, including the zero-item and inline single-shard ones, so an
// empty-range call is still visible in the next snapshot.
struct PoolCounters {
  Counter* calls;
  Counter* items;
  Counter* shards;
  PoolCounters() {
    MetricsRegistry& registry = MetricsRegistry::Global();
    calls = &registry.GetCounter("pool.parallel_for_calls");
    items = &registry.GetCounter("pool.items_dispatched");
    shards = &registry.GetCounter("pool.shards_dispatched");
  }
  void Publish(size_t count, size_t num_shards) const {
    calls->Increment();
    items->Increment(count);
    shards->Increment(num_shards);
  }
};

const PoolCounters& GetPoolCounters() {
  static const PoolCounters counters;
  return counters;
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // exceptions land in the task's future, never escape here
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::ParallelFor(
    size_t count, size_t num_shards,
    const std::function<void(size_t, size_t, size_t)>& fn) {
  num_shards = std::max<size_t>(1, std::min(num_shards, std::max<size_t>(count, 1)));
  GetPoolCounters().Publish(count, num_shards);
  if (num_shards == 1) {
    fn(0, 0, count);  // inline: nothing to schedule, nothing to capture
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    size_t begin = ShardBegin(count, num_shards, s);
    size_t end = ShardBegin(count, num_shards, s + 1);
    futures.push_back(Submit([&fn, s, begin, end] { fn(s, begin, end); }));
  }
  // Wait for every shard before rethrowing, so no task still references
  // caller state when the exception unwinds; keep the lowest-shard error.
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace greater
