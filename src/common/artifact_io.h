#ifndef GREATER_COMMON_ARTIFACT_IO_H_
#define GREATER_COMMON_ARTIFACT_IO_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"

namespace greater {

/// Durable artifact I/O: the binary container every persisted model,
/// mapping, and pipeline checkpoint in this repo is written in, plus the
/// atomic file writer that gets it to disk (see DESIGN.md, "Durability &
/// recovery").
///
/// Container layout (all integers little-endian):
///
///   magic            8 bytes   "GRTRART1"
///   format_version   u32       container layout version (kFormatVersion)
///   kind             string    component tag, e.g. "greater.vocabulary"
///   artifact_version u32       component payload version
///   chunk_count      u32
///   chunk[i]:
///     name           string    chunk tag, unique within the document
///     payload_len    u64
///     payload        bytes
///     crc32          u32       CRC-32 (IEEE) chained over name + payload
///
/// where `string` is a u32 length prefix followed by raw bytes. Every
/// failure mode maps to a typed Status: truncation / bad magic / CRC
/// mismatch -> kDataLoss, unknown versions or kind mismatch ->
/// kFailedPrecondition. Components embed their children as chunk payloads
/// holding full nested documents, so one parser covers files and blobs.

/// CRC-32 (IEEE 802.3 polynomial, table-driven). `seed` chains calls:
/// Crc32(b, Crc32(a)) == Crc32(a + b).
uint32_t Crc32(std::string_view data, uint32_t seed = 0);

/// Container layout version written by ArtifactWriter.
inline constexpr uint32_t kArtifactFormatVersion = 1;

/// Little-endian append-only byte sink for chunk payloads.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  /// Doubles travel as their IEEE-754 bit pattern: round-trips are bitwise
  /// exact, which the seeded-replay contract depends on.
  void PutF64(double v);
  /// u32 length prefix + raw bytes.
  void PutString(std::string_view s);
  /// Raw bytes, no prefix (caller encodes its own framing).
  void PutRaw(std::string_view s) { buf_.append(s.data(), s.size()); }

  const std::string& bytes() const& { return buf_; }
  std::string Take() && { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked reader over a byte span. Every getter returns kDataLoss
/// on truncation instead of reading past the end — a torn artifact can
/// never turn into undefined behaviour. Does not own the bytes.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  Status GetU8(uint8_t* out);
  Status GetBool(bool* out);
  Status GetU32(uint32_t* out);
  Status GetU64(uint64_t* out);
  Status GetI64(int64_t* out);
  Status GetF64(double* out);
  Status GetString(std::string* out);
  /// View of the next `n` bytes (valid while the underlying span lives).
  Status GetBytes(size_t n, std::string_view* out);

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }
  /// kDataLoss unless every byte has been consumed — catches payloads with
  /// trailing garbage (a symptom of framing bugs or concatenated writes).
  Status ExpectEnd() const;

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

/// Builds an artifact document: named, CRC-checksummed chunks under a kind
/// tag and a component version.
class ArtifactWriter {
 public:
  ArtifactWriter(std::string kind, uint32_t artifact_version)
      : kind_(std::move(kind)), version_(artifact_version) {}

  void AddChunk(std::string name, std::string payload) {
    chunks_.emplace_back(std::move(name), std::move(payload));
  }

  /// Serializes the whole document.
  std::string Finish() const;

 private:
  std::string kind_;
  uint32_t version_;
  std::vector<std::pair<std::string, std::string>> chunks_;
};

/// Parses and validates an artifact document. Owns the byte buffer; chunk
/// views stay valid for the reader's lifetime.
class ArtifactReader {
 public:
  /// Full validation pass: magic, format version, kind match, component
  /// version <= `max_version`, every chunk's framing and CRC. Typed
  /// errors: kDataLoss for torn/truncated/corrupt bytes,
  /// kFailedPrecondition for version or kind mismatches.
  static Result<ArtifactReader> Parse(std::string bytes,
                                      std::string_view expected_kind,
                                      uint32_t max_version);

  const std::string& kind() const { return kind_; }
  uint32_t version() const { return version_; }

  bool HasChunk(std::string_view name) const;
  /// kNotFound when the document has no such chunk.
  Result<std::string_view> Chunk(std::string_view name) const;
  /// Chunk names in document order.
  const std::vector<std::string>& chunk_names() const { return names_; }

 private:
  ArtifactReader() = default;

  std::string buffer_;
  std::string kind_;
  uint32_t version_ = 0;
  std::vector<std::string> names_;
  /// Chunk payloads as (offset, length) into buffer_ — offsets stay valid
  /// across moves of the reader, unlike views into a possibly-SSO string.
  std::unordered_map<std::string, std::pair<size_t, size_t>> chunks_;
};

/// Writes `bytes` to `path` atomically: tmp file in the same directory,
/// fsync, rename over the target, fsync the directory. Readers see either
/// the old file or the complete new one — never a torn mix. Evaluates the
/// "ckpt.write" fault point (a fired fault simulates a crash before the
/// rename: the target is untouched). Exports ckpt.writes /
/// ckpt.write_failures / ckpt.bytes_written metrics.
Status AtomicWriteFile(const std::string& path, std::string_view bytes);

/// Reads a whole file. Evaluates the "ckpt.read" fault point; exports
/// ckpt.reads / ckpt.read_failures.
Result<std::string> ReadFileBytes(const std::string& path);

/// AtomicWriteFile of a finished document.
Status SaveArtifactFile(const std::string& path, const ArtifactWriter& doc);

/// ReadFileBytes + ArtifactReader::Parse with provenance context.
Result<ArtifactReader> LoadArtifactFile(const std::string& path,
                                        std::string_view expected_kind,
                                        uint32_t max_version);

}  // namespace greater

#endif  // GREATER_COMMON_ARTIFACT_IO_H_
