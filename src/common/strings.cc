#include "common/strings.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace greater {

std::vector<std::string> Split(std::string_view text, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitSkipEmpty(std::string_view text, char delim) {
  std::vector<std::string> out;
  for (auto& part : Split(text, delim)) {
    if (!part.empty()) out.push_back(std::move(part));
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string Strip(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ReplaceAll(std::string_view text, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(text);
  std::string out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(text.substr(start));
      break;
    }
    out.append(text.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
  return out;
}

std::optional<int64_t> ParseInt(std::string_view text) {
  if (text.empty()) return std::nullopt;
  int64_t value = 0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return value;
}

std::optional<double> ParseDouble(std::string_view text) {
  if (text.empty()) return std::nullopt;
  // std::from_chars<double> is available in libstdc++ >= 11.
  double value = 0.0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return value;
}

std::string FormatDouble(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(value));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  // Trim to shortest representation that round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char probe[64];
    std::snprintf(probe, sizeof(probe), "%.*g", prec, value);
    double back = 0.0;
    std::sscanf(probe, "%lf", &back);
    if (back == value) return probe;
  }
  return buf;
}

}  // namespace greater
