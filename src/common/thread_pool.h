#ifndef GREATER_COMMON_THREAD_POOL_H_
#define GREATER_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace greater {

/// Small fixed-size worker pool — the parallel execution layer behind
/// data-parallel NeuralLm training and GreatSynthesizer::SampleRows.
///
/// Design constraints (see DESIGN.md, "Parallel execution layer"):
///  - Work is partitioned into *index-addressed* shards, never
///    worker-addressed ones: any thread may run shard `s`, but everything
///    shard `s` writes lives in buffers selected by `s`. Combined with a
///    fixed-order reduce in the caller, results depend only on the shard
///    plan, not on scheduling.
///  - Exceptions thrown by tasks are captured and rethrown on the calling
///    thread: Submit() via the returned future, ParallelFor() by rethrowing
///    the lowest-index shard's exception after every shard finished.
///  - A pool of size 1 still runs tasks on its single worker thread;
///    callers that want a zero-overhead serial path should branch before
///    reaching the pool (NeuralLm and GreatSynthesizer do).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_workers() const { return workers_.size(); }

  /// Enqueues one task. The future rethrows any exception the task threw.
  std::future<void> Submit(std::function<void()> task);

  /// Runs fn(shard, begin, end) for `num_shards` contiguous shards
  /// partitioning [0, count): shard s covers
  /// [s*count/num_shards, (s+1)*count/num_shards). Blocks until every
  /// shard finished, then rethrows the lowest-shard-index exception if any
  /// shard threw. The partition depends only on (count, num_shards), so a
  /// fixed shard plan yields a fixed write pattern regardless of which
  /// worker picks up which shard.
  void ParallelFor(size_t count, size_t num_shards,
                   const std::function<void(size_t shard, size_t begin,
                                            size_t end)>& fn);

  /// Shard boundaries used by ParallelFor, exposed so callers can size
  /// per-shard buffers identically.
  static size_t ShardBegin(size_t count, size_t num_shards, size_t shard) {
    return count * shard / num_shards;
  }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace greater

#endif  // GREATER_COMMON_THREAD_POOL_H_
