#ifndef GREATER_COMMON_RNG_H_
#define GREATER_COMMON_RNG_H_

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace greater {

/// xoshiro256++ uniform random bit engine (Blackman & Vigna). Drop-in for
/// std::mt19937_64 behind the std <random> distribution adaptors, chosen
/// for its construction cost: seeding fills four words through SplitMix64
/// instead of regenerating a 312-word twister table, which matters because
/// the sampling paths construct one derived stream per row (see
/// Rng::DeriveStreamSeed) — with mt19937_64 the per-row state refill was
/// the single largest line in the decode profile. State is four words, so
/// checkpoint serialization is four decimal tokens instead of ~312.
class Xoshiro256pp {
 public:
  using result_type = uint64_t;

  explicit Xoshiro256pp(uint64_t seed = 0) {
    // SplitMix64 expansion, the seeding scheme the xoshiro authors
    // recommend; it cannot produce the all-zero state from any seed in
    // practice, but guard anyway since all-zero is the one invalid state.
    uint64_t z = seed;
    for (auto& word : s_) {
      z += 0x9e3779b97f4a7c15ULL;
      uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      word = x ^ (x >> 31);
    }
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9e3779b97f4a7c15ULL;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() {
    auto rotl = [](uint64_t x, int k) {
      return (x << k) | (x >> (64 - k));
    };
    const uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  uint64_t state_word(size_t i) const { return s_[i]; }
  void set_state(uint64_t a, uint64_t b, uint64_t c, uint64_t d) {
    s_[0] = a;
    s_[1] = b;
    s_[2] = c;
    s_[3] = d;
  }

 private:
  uint64_t s_[4];
};

/// Deterministic random number generator used throughout the library.
///
/// Every stochastic component (bootstrap sampling, LM sampling, data
/// generation, feature-order permutation) takes an Rng so that entire
/// pipelines are reproducible from a single seed — a requirement for the
/// eight independent trials of the paper's evaluation protocol.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double Uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform index in [0, n). Requires n > 0.
  size_t Index(size_t n) {
    return static_cast<size_t>(
        std::uniform_int_distribution<uint64_t>(0, n - 1)(engine_));
  }

  /// Standard normal draw.
  double Normal() {
    return std::normal_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Normal draw with given mean/stddev.
  double Normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Geometric draw (number of failures before first success), p in (0,1].
  int64_t Geometric(double p) {
    return std::geometric_distribution<int64_t>(p)(engine_);
  }

  /// Poisson draw with given mean.
  int64_t Poisson(double mean) {
    return std::poisson_distribution<int64_t>(mean)(engine_);
  }

  /// Samples an index from an unnormalized non-negative weight vector.
  /// Returns items.size() == 0 ? 0 : an index in [0, weights.size()).
  /// If all weights are zero, falls back to uniform.
  size_t Categorical(const std::vector<double>& weights);

  /// Uniformly chooses one element of `items`. Requires non-empty.
  template <typename T>
  const T& Choice(const std::vector<T>& items) {
    return items[Index(items.size())];
  }

  /// Fisher–Yates shuffle in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    std::shuffle(items->begin(), items->end(), engine_);
  }

  /// Returns a random permutation of [0, n).
  std::vector<size_t> Permutation(size_t n);

  /// Draws `count` indices with replacement from [0, n) — the bootstrap
  /// primitive behind the append-by-sampling step (paper Sec. 3.3.3).
  std::vector<size_t> BootstrapIndices(size_t n, size_t count);

  /// Forks a child generator whose stream is independent of (but
  /// deterministically derived from) this one. Used to give each of the
  /// eight evaluation trials its own stream.
  Rng Fork();

  /// Deterministically derives the seed of parallel stream `index` from a
  /// `base` value (SplitMix64 finalizer over base + index). Parallel
  /// samplers draw ONE base from the caller's generator — advancing it by
  /// the same amount regardless of worker count — and give worker `w` the
  /// stream seeded with DeriveStreamSeed(base, w), so a fixed
  /// (seed, num_threads) pair always reproduces the same output.
  static uint64_t DeriveStreamSeed(uint64_t base, uint64_t index);

  /// Serializes the full engine state (four decimal words) so a
  /// checkpointed pipeline can resume with an identical draw sequence.
  std::string SaveState() const;

  /// Restores a state produced by SaveState. Returns false (leaving the
  /// engine untouched) when `state` does not parse as an engine state.
  bool LoadState(const std::string& state);

  Xoshiro256pp& engine() { return engine_; }

 private:
  Xoshiro256pp engine_;
};

}  // namespace greater

#endif  // GREATER_COMMON_RNG_H_
