#include "common/artifact_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/fault.h"
#include "obs/metrics.h"

namespace greater {

namespace {

constexpr char kMagic[8] = {'G', 'R', 'T', 'R', 'A', 'R', 'T', '1'};

/// CRC-32 lookup table for the reflected IEEE 802.3 polynomial,
/// generated once on first use.
const uint32_t* Crc32Table() {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

std::string DirName(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status Errno(const std::string& op, const std::string& path) {
  return Status::Internal(op + " '" + path + "': " + std::strerror(errno));
}

}  // namespace

uint32_t Crc32(std::string_view data, uint32_t seed) {
  const uint32_t* table = Crc32Table();
  uint32_t c = seed ^ 0xffffffffu;
  for (unsigned char byte : data) {
    c = table[(c ^ byte) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

void ByteWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
}

void ByteWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
}

void ByteWriter::PutF64(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void ByteWriter::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buf_.append(s.data(), s.size());
}

Status ByteReader::GetU8(uint8_t* out) {
  if (remaining() < 1) {
    return Status::DataLoss("truncated artifact: need 1 byte, have 0");
  }
  *out = static_cast<uint8_t>(data_[pos_++]);
  return Status::OK();
}

Status ByteReader::GetBool(bool* out) {
  uint8_t byte = 0;
  GREATER_RETURN_NOT_OK(GetU8(&byte));
  if (byte > 1) {
    return Status::DataLoss("corrupt artifact: bool byte out of range");
  }
  *out = byte != 0;
  return Status::OK();
}

Status ByteReader::GetU32(uint32_t* out) {
  if (remaining() < 4) {
    return Status::DataLoss("truncated artifact: need 4 bytes, have " +
                            std::to_string(remaining()));
  }
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  *out = v;
  return Status::OK();
}

Status ByteReader::GetU64(uint64_t* out) {
  if (remaining() < 8) {
    return Status::DataLoss("truncated artifact: need 8 bytes, have " +
                            std::to_string(remaining()));
  }
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  *out = v;
  return Status::OK();
}

Status ByteReader::GetI64(int64_t* out) {
  uint64_t v = 0;
  GREATER_RETURN_NOT_OK(GetU64(&v));
  *out = static_cast<int64_t>(v);
  return Status::OK();
}

Status ByteReader::GetF64(double* out) {
  uint64_t bits = 0;
  GREATER_RETURN_NOT_OK(GetU64(&bits));
  std::memcpy(out, &bits, sizeof(bits));
  return Status::OK();
}

Status ByteReader::GetString(std::string* out) {
  uint32_t len = 0;
  GREATER_RETURN_NOT_OK(GetU32(&len));
  std::string_view view;
  GREATER_RETURN_NOT_OK(GetBytes(len, &view));
  out->assign(view.data(), view.size());
  return Status::OK();
}

Status ByteReader::GetBytes(size_t n, std::string_view* out) {
  if (remaining() < n) {
    return Status::DataLoss("truncated artifact: need " + std::to_string(n) +
                            " bytes, have " + std::to_string(remaining()));
  }
  *out = data_.substr(pos_, n);
  pos_ += n;
  return Status::OK();
}

Status ByteReader::ExpectEnd() const {
  if (!AtEnd()) {
    return Status::DataLoss("corrupt artifact: " +
                            std::to_string(remaining()) +
                            " unexpected trailing bytes");
  }
  return Status::OK();
}

std::string ArtifactWriter::Finish() const {
  ByteWriter w;
  w.PutRaw(std::string_view(kMagic, sizeof(kMagic)));
  w.PutU32(kArtifactFormatVersion);
  w.PutString(kind_);
  w.PutU32(version_);
  w.PutU32(static_cast<uint32_t>(chunks_.size()));
  for (const auto& [name, payload] : chunks_) {
    w.PutString(name);
    w.PutU64(payload.size());
    w.PutRaw(payload);
    w.PutU32(Crc32(payload, Crc32(name)));
  }
  return std::move(w).Take();
}

Result<ArtifactReader> ArtifactReader::Parse(std::string bytes,
                                             std::string_view expected_kind,
                                             uint32_t max_version) {
  ArtifactReader out;
  out.buffer_ = std::move(bytes);
  ByteReader r(out.buffer_);

  std::string_view magic;
  GREATER_RETURN_NOT_OK_CTX(r.GetBytes(sizeof(kMagic), &magic),
                            "artifact header");
  if (magic != std::string_view(kMagic, sizeof(kMagic))) {
    return Status::DataLoss(
        "not an artifact file (bad magic; torn write or foreign format)");
  }
  uint32_t format_version = 0;
  GREATER_RETURN_NOT_OK_CTX(r.GetU32(&format_version), "artifact header");
  if (format_version != kArtifactFormatVersion) {
    return Status::FailedPrecondition(
        "unsupported artifact container version " +
        std::to_string(format_version) + " (this build reads " +
        std::to_string(kArtifactFormatVersion) + ")");
  }
  GREATER_RETURN_NOT_OK_CTX(r.GetString(&out.kind_), "artifact header");
  if (!expected_kind.empty() && out.kind_ != expected_kind) {
    return Status::FailedPrecondition("artifact kind mismatch: expected '" +
                                      std::string(expected_kind) +
                                      "', found '" + out.kind_ + "'");
  }
  GREATER_RETURN_NOT_OK_CTX(r.GetU32(&out.version_), "artifact header");
  if (out.version_ > max_version) {
    return Status::FailedPrecondition(
        "artifact '" + out.kind_ + "' version " +
        std::to_string(out.version_) + " is newer than this build reads (" +
        std::to_string(max_version) + ")");
  }

  uint32_t chunk_count = 0;
  GREATER_RETURN_NOT_OK_CTX(r.GetU32(&chunk_count), "artifact header");
  for (uint32_t i = 0; i < chunk_count; ++i) {
    const std::string ctx = "chunk " + std::to_string(i) + " of '" +
                            out.kind_ + "'";
    std::string name;
    GREATER_RETURN_NOT_OK_CTX(r.GetString(&name), ctx);
    uint64_t payload_len = 0;
    GREATER_RETURN_NOT_OK_CTX(r.GetU64(&payload_len), ctx);
    std::string_view payload;
    GREATER_RETURN_NOT_OK_CTX(r.GetBytes(payload_len, &payload),
                              ctx + " ('" + name + "')");
    uint32_t stored_crc = 0;
    GREATER_RETURN_NOT_OK_CTX(r.GetU32(&stored_crc),
                              ctx + " ('" + name + "')");
    uint32_t actual_crc = Crc32(payload, Crc32(name));
    if (actual_crc != stored_crc) {
      return Status::DataLoss("checksum mismatch in chunk '" + name +
                              "' of '" + out.kind_ +
                              "' (stored " + std::to_string(stored_crc) +
                              ", computed " + std::to_string(actual_crc) +
                              "): corrupt artifact");
    }
    if (out.chunks_.count(name) > 0) {
      return Status::DataLoss("duplicate chunk '" + name + "' in '" +
                              out.kind_ + "'");
    }
    out.chunks_.emplace(
        name, std::make_pair(
                  static_cast<size_t>(payload.data() - out.buffer_.data()),
                  payload.size()));
    out.names_.push_back(std::move(name));
  }
  GREATER_RETURN_NOT_OK_CTX(r.ExpectEnd(), "artifact '" + out.kind_ + "'");
  return out;
}

bool ArtifactReader::HasChunk(std::string_view name) const {
  return chunks_.count(std::string(name)) > 0;
}

Result<std::string_view> ArtifactReader::Chunk(std::string_view name) const {
  auto it = chunks_.find(std::string(name));
  if (it == chunks_.end()) {
    return Status::NotFound("artifact '" + kind_ + "' has no chunk '" +
                            std::string(name) + "'");
  }
  return std::string_view(buffer_).substr(it->second.first,
                                          it->second.second);
}

Status AtomicWriteFile(const std::string& path, std::string_view bytes) {
  static Counter& writes = MetricsRegistry::Global().GetCounter("ckpt.writes");
  static Counter& failures =
      MetricsRegistry::Global().GetCounter("ckpt.write_failures");
  static Counter& bytes_written =
      MetricsRegistry::Global().GetCounter("ckpt.bytes_written");

  // A fired fault models a crash before the rename: per the atomicity
  // contract the target file must be left untouched, so the point sits
  // ahead of any filesystem mutation.
  if (FaultRegistry::AnyArmed()) {
    Status injected = FaultRegistry::Global().Check("ckpt.write");
    if (!injected.ok()) {
      failures.Increment();
      return injected;
    }
  }

  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    failures.Increment();
    return Errno("open", tmp);
  }
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status st = Errno("write", tmp);
      ::close(fd);
      ::unlink(tmp.c_str());
      failures.Increment();
      return st;
    }
    off += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    Status st = Errno("fsync", tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    failures.Increment();
    return st;
  }
  if (::close(fd) != 0) {
    Status st = Errno("close", tmp);
    ::unlink(tmp.c_str());
    failures.Increment();
    return st;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    Status st = Errno("rename", tmp);
    ::unlink(tmp.c_str());
    failures.Increment();
    return st;
  }
  // Persist the rename itself: fsync the containing directory so the new
  // directory entry survives a power cut. The rename already happened, so
  // the file IS visible — but without the directory fsync a crash could
  // roll it back, which for a checkpoint is silent data loss. A failure
  // here is therefore an error, not a best-effort shrug.
  int dir_fd = ::open(DirName(path).c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd < 0) {
    failures.Increment();
    return Errno("open (directory fsync)", DirName(path));
  }
  if (::fsync(dir_fd) != 0) {
    Status st = Errno("fsync (directory)", DirName(path));
    ::close(dir_fd);
    failures.Increment();
    return st;
  }
  if (::close(dir_fd) != 0) {
    failures.Increment();
    return Errno("close (directory)", DirName(path));
  }
  writes.Increment();
  bytes_written.Increment(bytes.size());
  return Status::OK();
}

Result<std::string> ReadFileBytes(const std::string& path) {
  static Counter& reads = MetricsRegistry::Global().GetCounter("ckpt.reads");
  static Counter& failures =
      MetricsRegistry::Global().GetCounter("ckpt.read_failures");

  if (FaultRegistry::AnyArmed()) {
    Status injected = FaultRegistry::Global().Check("ckpt.read");
    if (!injected.ok()) {
      failures.Increment();
      return injected;
    }
  }

  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    failures.Increment();
    if (errno == ENOENT) {
      return Status::NotFound("no such artifact file: '" + path + "'");
    }
    return Errno("open", path);
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      Status st = Errno("read", path);
      ::close(fd);
      failures.Increment();
      return st;
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  reads.Increment();
  return out;
}

Status SaveArtifactFile(const std::string& path, const ArtifactWriter& doc) {
  return AtomicWriteFile(path, doc.Finish());
}

Result<ArtifactReader> LoadArtifactFile(const std::string& path,
                                        std::string_view expected_kind,
                                        uint32_t max_version) {
  GREATER_ASSIGN_OR_RETURN(std::string bytes, ReadFileBytes(path));
  GREATER_ASSIGN_OR_RETURN_CTX(
      ArtifactReader reader,
      ArtifactReader::Parse(std::move(bytes), expected_kind, max_version),
      "artifact file '" + path + "'");
  return reader;
}

}  // namespace greater
