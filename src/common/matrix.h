#ifndef GREATER_COMMON_MATRIX_H_
#define GREATER_COMMON_MATRIX_H_

#include <cstddef>
#include <string>
#include <vector>

namespace greater {

/// Minimal dense row-major matrix of doubles. Used for correlation /
/// association matrices and as the parameter storage of the neural language
/// model. Deliberately small: only the operations the library needs.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  double* RowPtr(size_t r) { return data_.data() + r * cols_; }
  const double* RowPtr(size_t r) const { return data_.data() + r * cols_; }

  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  void Fill(double value) { data_.assign(data_.size(), value); }

  /// this * other; dimensions must agree.
  Matrix MatMul(const Matrix& other) const;

  /// Transposed copy.
  Matrix Transposed() const;

  /// Elementwise in-place: this += scale * other (same shape).
  void AddScaled(const Matrix& other, double scale);

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// Debug rendering with fixed precision.
  std::string ToString(int precision = 3) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace greater

#endif  // GREATER_COMMON_MATRIX_H_
