#include "common/rng.h"

#include <numeric>
#include <sstream>

namespace greater {

size_t Rng::Categorical(const std::vector<double>& weights) {
  if (weights.empty()) return 0;
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0) return Index(weights.size());
  double target = Uniform() * total;
  double cum = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cum += weights[i];
    if (target < cum) return i;
  }
  return weights.size() - 1;  // numerical slack on the last bucket
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  Shuffle(&perm);
  return perm;
}

std::vector<size_t> Rng::BootstrapIndices(size_t n, size_t count) {
  std::vector<size_t> out;
  if (n == 0) return out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) out.push_back(Index(n));
  return out;
}

uint64_t Rng::DeriveStreamSeed(uint64_t base, uint64_t index) {
  // SplitMix64 finalizer; the golden-ratio stride separates indices.
  uint64_t z = base + (index + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::string Rng::SaveState() const {
  // mt19937_64 defines a textual stream form (624-ish decimal words); it is
  // exact and portable across libstdc++ builds, which is all the resume
  // contract needs.
  std::ostringstream os;
  os << engine_;
  return os.str();
}

bool Rng::LoadState(const std::string& state) {
  std::mt19937_64 candidate;
  std::istringstream is(state);
  is >> candidate;
  if (is.fail()) return false;
  engine_ = candidate;
  return true;
}

Rng Rng::Fork() {
  // Draw two words from this stream to seed the child; keeps parent and
  // child streams decorrelated for mt19937_64's practical purposes.
  uint64_t a = engine_();
  uint64_t b = engine_();
  return Rng(a ^ (b * 0x2545F4914F6CDD1DULL + 0x9e3779b97f4a7c15ULL));
}

}  // namespace greater
