#include "common/rng.h"

#include <numeric>
#include <sstream>

namespace greater {

size_t Rng::Categorical(const std::vector<double>& weights) {
  if (weights.empty()) return 0;
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0) return Index(weights.size());
  double target = Uniform() * total;
  double cum = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cum += weights[i];
    if (target < cum) return i;
  }
  return weights.size() - 1;  // numerical slack on the last bucket
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  Shuffle(&perm);
  return perm;
}

std::vector<size_t> Rng::BootstrapIndices(size_t n, size_t count) {
  std::vector<size_t> out;
  if (n == 0) return out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) out.push_back(Index(n));
  return out;
}

uint64_t Rng::DeriveStreamSeed(uint64_t base, uint64_t index) {
  // SplitMix64 finalizer; the golden-ratio stride separates indices.
  uint64_t z = base + (index + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::string Rng::SaveState() const {
  // Four decimal words, space-separated: the full xoshiro256++ state. The
  // form is exact and portable, which is all the resume contract needs.
  std::ostringstream os;
  os << engine_.state_word(0) << ' ' << engine_.state_word(1) << ' '
     << engine_.state_word(2) << ' ' << engine_.state_word(3);
  return os.str();
}

bool Rng::LoadState(const std::string& state) {
  std::istringstream is(state);
  uint64_t words[4];
  for (auto& word : words) {
    is >> word;
    if (is.fail()) return false;
  }
  if ((words[0] | words[1] | words[2] | words[3]) == 0) return false;
  engine_.set_state(words[0], words[1], words[2], words[3]);
  return true;
}

Rng Rng::Fork() {
  // Draw two words from this stream to seed the child; the SplitMix64
  // expansion in the constructor keeps parent and child streams
  // decorrelated for practical purposes.
  uint64_t a = engine_();
  uint64_t b = engine_();
  return Rng(a ^ (b * 0x2545F4914F6CDD1DULL + 0x9e3779b97f4a7c15ULL));
}

}  // namespace greater
