#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace greater {
namespace {

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Shortest round-trippable decimal form, matching how the JSON exporter
// writes every floating-point value.
std::string FormatDouble(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return std::string(buffer);
}

void AppendJsonString(const std::string& text, std::string* out) {
  out->push_back('"');
  for (char c : text) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default: out->push_back(c);
    }
  }
  out->push_back('"');
}

}  // namespace

size_t ThisThreadMetricShard() {
  static std::atomic<size_t> next_thread{0};
  thread_local size_t shard =
      next_thread.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return shard;
}

// ---------- Histogram ----------

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), shards_(kMetricShards) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  for (Shard& shard : shards_) {
    shard.counts =
        std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
    for (size_t b = 0; b <= bounds_.size(); ++b) {
      shard.counts[b].store(0, std::memory_order_relaxed);
    }
  }
}

void Histogram::Observe(double value) {
  size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  Shard& shard = shards_[ThisThreadMetricShard()];
  shard.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  double sum = shard.sum.load(std::memory_order_relaxed);
  while (!shard.sum.compare_exchange_weak(sum, sum + value,
                                          std::memory_order_relaxed)) {
  }
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> out(bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    for (size_t b = 0; b < out.size(); ++b) {
      out[b] += shard.counts[b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

uint64_t Histogram::TotalCount() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.count.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Sum() const {
  // Fixed shard order, so the floating-point reduction is reproducible.
  double total = 0.0;
  for (const Shard& shard : shards_) {
    total += shard.sum.load(std::memory_order_relaxed);
  }
  return total;
}

void Histogram::Reset() {
  for (Shard& shard : shards_) {
    for (size_t b = 0; b <= bounds_.size(); ++b) {
      shard.counts[b].store(0, std::memory_order_relaxed);
    }
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0.0, std::memory_order_relaxed);
  }
}

std::vector<double> Histogram::DefaultLatencyBucketsUs() {
  std::vector<double> bounds;
  for (double decade = 1.0; decade <= 1e6; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(2.0 * decade);
    bounds.push_back(5.0 * decade);
  }
  return bounds;  // 1us .. 5s
}

// ---------- MetricsRegistry ----------

MetricsRegistry::MetricsRegistry() : epoch_ns_(SteadyNowNs()) {}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

Histogram& MetricsRegistry::GetLatencyHistogram(const std::string& name) {
  return GetHistogram(name, Histogram::DefaultLatencyBucketsUs());
}

uint64_t MetricsRegistry::NowNs() const { return SteadyNowNs() - epoch_ns_; }

void MetricsRegistry::RecordSpan(SpanRecord record) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (spans_.size() < max_spans_) {
      spans_.push_back(std::move(record));
      return;
    }
  }
  GetCounter("obs.spans_dropped").Increment();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->Value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge->Value());
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h;
    h.name = name;
    h.bounds = histogram->bounds();
    h.counts = histogram->BucketCounts();
    h.count = histogram->TotalCount();
    h.sum = histogram->Sum();
    snapshot.histograms.push_back(std::move(h));
  }
  snapshot.spans = spans_;
  std::sort(snapshot.spans.begin(), snapshot.spans.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.id < b.id;
            });
  return snapshot;
}

std::string MetricsRegistry::ToJson(JsonMode mode) const {
  MetricsSnapshot snapshot = Snapshot();
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    AppendJsonString(name, &out);
    out += ": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    AppendJsonString(name, &out);
    out += ": " + FormatDouble(value);
  }
  out += first ? "}" : "\n  }";
  if (mode == JsonMode::kDeterministic) {
    out += "\n}\n";
    return out;
  }
  out += ",\n  \"histograms\": {";
  first = true;
  for (const HistogramSnapshot& h : snapshot.histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    AppendJsonString(h.name, &out);
    out += ": {\"bounds\": [";
    for (size_t b = 0; b < h.bounds.size(); ++b) {
      if (b > 0) out += ", ";
      out += FormatDouble(h.bounds[b]);
    }
    out += "], \"counts\": [";
    for (size_t b = 0; b < h.counts.size(); ++b) {
      if (b > 0) out += ", ";
      out += std::to_string(h.counts[b]);
    }
    out += "], \"count\": " + std::to_string(h.count);
    out += ", \"sum\": " + FormatDouble(h.sum) + "}";
  }
  out += first ? "}" : "\n  }";
  out += ",\n  \"spans\": [";
  first = true;
  for (const SpanRecord& span : snapshot.spans) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"id\": " + std::to_string(span.id);
    out += ", \"parent\": " + std::to_string(span.parent_id);
    out += ", \"name\": ";
    AppendJsonString(span.name, &out);
    out += ", \"start_us\": " +
           FormatDouble(static_cast<double>(span.start_ns) / 1000.0);
    out += ", \"duration_us\": " +
           FormatDouble(static_cast<double>(span.duration_ns) / 1000.0);
    out += "}";
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
  spans_.clear();
  next_span_id_.store(0, std::memory_order_relaxed);
  epoch_ns_ = SteadyNowNs();
}

}  // namespace greater
