#ifndef GREATER_OBS_METRICS_H_
#define GREATER_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace greater {

/// Observability substrate: a process-wide (or test-local) registry of
/// named counters, gauges, and fixed-bucket histograms, cheap enough to
/// leave armed on hot paths.
///
/// Design (see DESIGN.md, "Observability"):
///  - Counters and histograms are sharded per thread: each thread writes a
///    private cache-line-padded slot (relaxed atomics), and Snapshot()
///    reduces the slots in fixed index order — mirroring ThreadPool's
///    fixed-order gradient reduce, so a snapshot taken at num_threads=1 is
///    a deterministic function of the seeded workload.
///  - Metric objects are created once and never destroyed until the
///    registry itself dies; Reset() zeroes values in place, so pointers
///    cached by hot paths (static locals) stay valid across test cases.
///  - Export is a single JSON document (ToJson). The *deterministic view*
///    (JsonMode::kDeterministic) carries counters and gauges only; timing
///    histograms and spans are wall-clock measurements and are excluded
///    from the byte-identical reproducibility contract.

/// Number of per-thread slots per sharded metric. Threads are assigned a
/// slot round-robin at first use; collisions are correct (slots are
/// atomic), just slightly contended.
inline constexpr size_t kMetricShards = 8;

/// Index of the calling thread's metric slot in [0, kMetricShards).
size_t ThisThreadMetricShard();

/// Monotonically increasing event count.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(uint64_t n = 1) {
    shards_[ThisThreadMetricShard()].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  /// Fixed-order (slot 0..kMetricShards-1) sum over the thread slots.
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (Shard& shard : shards_) {
      shard.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  Shard shards_[kMetricShards];
};

/// Last-writer-wins instantaneous value.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double value) { value_.store(value, std::memory_order_relaxed); }

  void Add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }

  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: bucket i counts observations <= bounds[i], the
/// implicit final bucket counts the rest. Observation counts and the
/// running sum are sharded per thread like Counter.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts (size bounds().size() + 1), reduced in fixed order.
  std::vector<uint64_t> BucketCounts() const;
  uint64_t TotalCount() const;
  double Sum() const;
  void Reset();

  /// Log-ish 1-2-5 ladder from 1 us to 5 s, for ScopedTimer histograms.
  static std::vector<double> DefaultLatencyBucketsUs();

 private:
  struct alignas(64) Shard {
    std::unique_ptr<std::atomic<uint64_t>[]> counts;
    std::atomic<uint64_t> count{0};
    std::atomic<double> sum{0.0};
  };

  std::vector<double> bounds_;
  std::vector<Shard> shards_;
};

/// One completed span: a named wall-clock interval with a parent link.
/// `parent_id` 0 means "root". Start times are nanoseconds relative to the
/// registry epoch (construction or last Reset).
struct SpanRecord {
  uint64_t id = 0;
  uint64_t parent_id = 0;
  std::string name;
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
};

/// Point-in-time copy of every metric in a registry.
struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;
  std::vector<uint64_t> counts;
  uint64_t count = 0;
  double sum = 0.0;
};

struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;  // name-sorted
  std::vector<std::pair<std::string, double>> gauges;      // name-sorted
  std::vector<HistogramSnapshot> histograms;               // name-sorted
  std::vector<SpanRecord> spans;                           // id-sorted
};

class MetricsRegistry {
 public:
  /// What ToJson exports. kFull is everything; kDeterministic drops spans
  /// and histograms (wall-clock data), leaving the counters and gauges
  /// that are byte-identical across seeded runs at num_threads=1.
  enum class JsonMode { kFull, kDeterministic };

  MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry library instrumentation writes to.
  static MetricsRegistry& Global();

  /// Finds or creates a metric. The returned reference stays valid (and
  /// keeps its identity across Reset) for the registry's lifetime, so hot
  /// paths cache the pointer in a static local.
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  /// `bounds` is used only on first creation; later calls with the same
  /// name return the existing histogram regardless of bounds.
  Histogram& GetHistogram(const std::string& name,
                          std::vector<double> bounds);
  /// Latency histogram with DefaultLatencyBucketsUs bounds.
  Histogram& GetLatencyHistogram(const std::string& name);

  /// Consistent copy of every metric and recorded span.
  MetricsSnapshot Snapshot() const;

  /// Serializes Snapshot() as one JSON document with name-sorted keys.
  std::string ToJson(JsonMode mode = JsonMode::kFull) const;

  /// Zeroes every metric in place (objects survive; cached pointers stay
  /// valid), clears recorded spans, and restarts span ids and the epoch.
  void Reset();

  // --- span plumbing (used by Span; tests use Span, not these) ---
  uint64_t NextSpanId() {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  /// Appends a completed span. Beyond `max_spans` records the span is
  /// dropped and the `obs.spans_dropped` counter incremented.
  void RecordSpan(SpanRecord record);
  /// Nanoseconds since the registry epoch.
  uint64_t NowNs() const;

  /// Span-store capacity; default 65536. Settable before a run for tests.
  void set_max_spans(size_t n) { max_spans_ = n; }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::vector<SpanRecord> spans_;
  size_t max_spans_ = 65536;
  std::atomic<uint64_t> next_span_id_{0};
  uint64_t epoch_ns_ = 0;  // steady_clock ns at construction / Reset
};

}  // namespace greater

#endif  // GREATER_OBS_METRICS_H_
