#include "obs/span.h"

#include <utility>

namespace greater {
namespace {

// Innermost-open-span stack of the calling thread. A single process-wide
// stack per thread: spans from different registries interleaving on one
// thread would cross-link, which no current caller does.
std::vector<uint64_t>& ThreadSpanStack() {
  thread_local std::vector<uint64_t> stack;
  return stack;
}

}  // namespace

Span::Span(std::string name, MetricsRegistry* registry)
    : Span(std::move(name), CurrentId(), registry) {}

Span::Span(std::string name, uint64_t parent_id, MetricsRegistry* registry)
    : registry_(registry) {
  record_.id = registry_->NextSpanId();
  record_.parent_id = parent_id;
  record_.name = std::move(name);
  record_.start_ns = registry_->NowNs();
  ThreadSpanStack().push_back(record_.id);
}

Span::~Span() {
  record_.duration_ns = registry_->NowNs() - record_.start_ns;
  std::vector<uint64_t>& stack = ThreadSpanStack();
  if (!stack.empty() && stack.back() == record_.id) stack.pop_back();
  registry_->RecordSpan(std::move(record_));
}

uint64_t Span::CurrentId() {
  const std::vector<uint64_t>& stack = ThreadSpanStack();
  return stack.empty() ? kNoParent : stack.back();
}

std::map<std::string, SpanAggregate> AggregateSpans(
    const std::vector<SpanRecord>& spans, uint64_t parent_id) {
  std::map<std::string, SpanAggregate> out;
  for (const SpanRecord& span : spans) {
    if (parent_id != kAllSpans && span.parent_id != parent_id) continue;
    SpanAggregate& agg = out[span.name];
    ++agg.count;
    agg.total_ns += span.duration_ns;
  }
  return out;
}

}  // namespace greater
