#ifndef GREATER_OBS_SPAN_H_
#define GREATER_OBS_SPAN_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace greater {

/// RAII wall-clock span. Construction opens the span (parented to the
/// innermost span open on this thread, unless an explicit parent id is
/// given); destruction records a SpanRecord into the registry — including
/// on error-path unwinds, so failed stages still appear in the trace.
///
/// Parent linkage uses a thread-local stack, so spans opened on ThreadPool
/// workers would be orphaned roots by default; code fanning work out
/// captures Span::CurrentId() before dispatch and passes it as the
/// explicit parent (see GreatSynthesizer::SampleMany).
class Span {
 public:
  /// `parent_id` of a root span (and the "no span open" CurrentId value).
  static constexpr uint64_t kNoParent = 0;

  explicit Span(std::string name,
                MetricsRegistry* registry = &MetricsRegistry::Global());
  Span(std::string name, uint64_t parent_id,
       MetricsRegistry* registry = &MetricsRegistry::Global());
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  uint64_t id() const { return record_.id; }

  /// Id of the innermost span open on the calling thread (kNoParent when
  /// none). Capture before handing work to another thread.
  static uint64_t CurrentId();

 private:
  MetricsRegistry* registry_;
  SpanRecord record_;
};

/// RAII timer observing its scope's elapsed wall time, in microseconds,
/// into a histogram (typically MetricsRegistry::GetLatencyHistogram).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram,
                       MetricsRegistry* registry = &MetricsRegistry::Global())
      : registry_(registry),
        histogram_(histogram),
        start_ns_(registry->NowNs()) {}
  ~ScopedTimer() {
    histogram_->Observe(
        static_cast<double>(registry_->NowNs() - start_ns_) / 1000.0);
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  MetricsRegistry* registry_;
  Histogram* histogram_;
  uint64_t start_ns_;
};

/// Wall-time totals per span name, summed over a snapshot's records.
struct SpanAggregate {
  uint64_t count = 0;
  uint64_t total_ns = 0;
};

/// No-filter sentinel for AggregateSpans.
inline constexpr uint64_t kAllSpans = ~uint64_t{0};

/// Aggregates spans by name. With `parent_id` given, only direct children
/// of that span are counted — the per-stage breakdown of one pipeline run
/// when passed the "pipeline.run" span's id (Span::kNoParent selects the
/// roots themselves).
std::map<std::string, SpanAggregate> AggregateSpans(
    const std::vector<SpanRecord>& spans, uint64_t parent_id = kAllSpans);

}  // namespace greater

#endif  // GREATER_OBS_SPAN_H_
