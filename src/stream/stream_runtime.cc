#include "stream/stream_runtime.h"

#include <exception>
#include <utility>

#include "obs/metrics.h"

namespace greater {

StreamRuntime::StreamRuntime(const StreamOptions& options)
    : watchdog_timeout_ms_(options.watchdog_timeout_ms == 0
                               ? 1
                               : options.watchdog_timeout_ms),
      watchdog_poll_ms_(options.watchdog_poll_ms == 0
                            ? 1
                            : options.watchdog_poll_ms) {
  watchdog_ = std::thread([this] { WatchdogLoop(); });
}

StreamRuntime::~StreamRuntime() { Finish(); }

void StreamRuntime::RegisterQueue(QueueControl* queue) {
  std::lock_guard<std::mutex> lock(mu_);
  queues_.push_back(queue);
  // A queue registered after a failure must not be waited on.
  if (failed_) queue->Poison(error_);
}

Heartbeat* StreamRuntime::AddHeartbeat(std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  heartbeats_.push_back(std::make_unique<Heartbeat>(std::move(name)));
  return heartbeats_.back().get();
}

void StreamRuntime::Spawn(std::string name, Heartbeat* heartbeat,
                          std::function<Status()> body) {
  std::lock_guard<std::mutex> lock(mu_);
  workers_.emplace_back([this, name = std::move(name), heartbeat,
                         body = std::move(body)] {
    Status status;
    try {
      status = body();
    } catch (const std::exception& e) {
      status = Status::Internal(std::string("uncaught exception: ") + e.what());
    } catch (...) {
      status = Status::Internal("uncaught non-standard exception");
    }
    if (heartbeat != nullptr && heartbeat->death_simulated()) {
      // Fault-injected silent death: leave the heartbeat un-done so only
      // the watchdog's deadline can surface the failure.
      MetricsRegistry::Global()
          .GetCounter("stream.simulated_worker_deaths")
          .Increment();
      return;
    }
    if (heartbeat != nullptr) heartbeat->MarkDone();
    if (!status.ok()) {
      Fail(status.WithContext("streaming stage '" + name + "'"));
    }
  });
}

void StreamRuntime::Fail(Status error) {
  std::vector<QueueControl*> to_poison;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!failed_) {
      failed_ = true;
      error_ = error;
    }
    to_poison = queues_;
  }
  // Poison outside the lock: Poison wakes blocked threads, and a woken
  // worker may call back into the runtime (error(), Fail()).
  for (QueueControl* q : to_poison) q->Poison(error);
}

Status StreamRuntime::error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return error_;
}

Status StreamRuntime::Finish() {
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (finished_) return error_;
    finished_ = true;
    workers.swap(workers_);
  }
  // Join workers while the watchdog still runs: if a worker hangs here,
  // the watchdog poisons the queues and unwedges it.
  for (std::thread& t : workers) {
    if (t.joinable()) t.join();
  }
  watchdog_stop_.store(true, std::memory_order_relaxed);
  if (watchdog_.joinable()) watchdog_.join();
  std::lock_guard<std::mutex> lock(mu_);
  return error_;
}

void StreamRuntime::WatchdogLoop() {
  const uint64_t timeout_ns = watchdog_timeout_ms_ * 1000000ull;
  while (!watchdog_stop_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(watchdog_poll_ms_));
    uint64_t now = Heartbeat::NowNs();
    std::string stalled;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (failed_) return;  // first error already decided; nothing to add
      for (const auto& hb : heartbeats_) {
        if (hb->done()) continue;
        uint64_t last = hb->last_beat_ns();
        if (now > last && now - last > timeout_ns) {
          stalled = hb->name();
          break;
        }
      }
    }
    if (!stalled.empty()) {
      MetricsRegistry::Global()
          .GetCounter("stream.watchdog_trips")
          .Increment();
      Fail(Status::DeadlineExceeded(
          "streaming stage '" + stalled + "' missed its heartbeat deadline (" +
          std::to_string(watchdog_timeout_ms_) +
          " ms): worker hung or died"));
      return;
    }
  }
}

}  // namespace greater
