#ifndef GREATER_STREAM_CHUNK_CHECKPOINT_H_
#define GREATER_STREAM_CHUNK_CHECKPOINT_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "common/artifact_io.h"
#include "common/rng.h"
#include "common/status.h"

namespace greater {

/// Per-chunk checkpoint store: the fine-grained layer under PR 5's
/// stage-level StageCheckpointer (DESIGN.md, "Durability & recovery").
/// Where a stage checkpoint makes a kill -9 cost at most one stage, a
/// chunk checkpoint makes it cost at most one chunk.
///
/// Each chunk persists to `<dir>/chunk.<label>.<index>.<key>.ckpt`, where
/// `key` is a running FNV-1a chain over everything upstream of the chunk:
/// a caller-provided prologue (options fingerprint, header) plus the RAW
/// input bytes of every chunk up to and including this one. Advancing the
/// chain with raw input — never with stored documents — makes the hit and
/// miss paths chain-identical by construction, so a resumed run computes
/// the same keys as an uninterrupted one, and any edit to the input (or
/// the options) flips every downstream key.
///
/// MixChunk is called by the single reader thread in input order; TryLoad
/// and Store take the key captured at mix time, so parse workers can load
/// and store concurrently (Store is thread-safe).
///
/// Failure policy matches StageCheckpointer: absent/corrupt/unreadable
/// checkpoint (or an injected "ckpt.read" fault) is a miss and the chunk
/// recomputes; a failed Store (torn disk, injected "ckpt.write" fault) is
/// counted and swallowed. Exports stream.chunk_hits / stream.chunk_misses
/// / stream.chunk_corrupt / stream.chunk_stores /
/// stream.chunk_store_failures.
class ChunkCheckpointer {
 public:
  static constexpr const char* kKind = "greater.chunk_checkpoint";
  static constexpr uint32_t kVersion = 1;

  /// Disabled when `dir` is empty: every TryLoad misses, every Store is a
  /// no-op; MixChunk still advances the chain.
  explicit ChunkCheckpointer(std::string dir, std::string label);

  bool enabled() const { return !dir_.empty(); }
  const std::string& label() const { return label_; }

  /// Folds prologue bytes (options fingerprint, CSV header) into the
  /// chain before any chunk. Length-prefixed, like StageCheckpointer.
  void Mix(std::string_view bytes);

  /// Folds one chunk's raw input bytes into the chain and returns the
  /// resulting key for that chunk. Single-threaded (reader thread), in
  /// input order.
  uint64_t MixChunk(std::string_view raw_bytes);

  uint64_t chain() const { return chain_; }

  std::string ChunkPath(uint64_t index, uint64_t key) const;

  /// Loads chunk `index` at `key`; nullopt on any miss. Thread-safe.
  std::optional<ArtifactReader> TryLoad(uint64_t index, uint64_t key);

  /// Best-effort persist of chunk `index` under `key`. Thread-safe; write
  /// failures are counted and swallowed.
  void Store(uint64_t index, uint64_t key, const ArtifactWriter& doc);

 private:
  const std::string dir_;
  const std::string label_;
  uint64_t chain_;

  std::mutex dir_mu_;
  bool dir_ready_ = false;
};

/// Appends an RNG engine state to a chunk document payload so a shard's
/// stream resumes mid-sequence: stochastic chunked stages save the
/// per-shard Rng AFTER processing each chunk, and a resumed run restores
/// it instead of replaying draws.
void AppendRngState(const Rng& rng, ByteWriter* writer);

/// Restores a state written by AppendRngState. kDataLoss on malformed
/// bytes (the chunk is then treated as corrupt -> recompute).
Status ReadRngState(ByteReader* reader, Rng* rng);

}  // namespace greater

#endif  // GREATER_STREAM_CHUNK_CHECKPOINT_H_
