#include "stream/chunk_checkpoint.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>
#include <utility>

#include "obs/metrics.h"

namespace greater {
namespace {

// FNV-1a, 64-bit — same chain construction as StageCheckpointer (see
// checkpoint.cc): guards stale reuse across honest input changes; CRC32
// inside the artifact container covers on-disk corruption.
constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x00000100000001b3ull;

uint64_t Fnv1a(std::string_view bytes, uint64_t seed) {
  uint64_t h = seed;
  for (char c : bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

uint64_t MixInto(uint64_t chain, std::string_view bytes) {
  // Length-prefix each contribution so Mix("ab") + Mix("c") never collides
  // with Mix("a") + Mix("bc").
  uint64_t len = bytes.size();
  char prefix[8];
  for (int i = 0; i < 8; ++i) {
    prefix[i] = static_cast<char>((len >> (8 * i)) & 0xff);
  }
  chain = Fnv1a(std::string_view(prefix, 8), chain);
  return Fnv1a(bytes, chain);
}

std::string HexU64(uint64_t v) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kDigits[v & 0xf];
    v >>= 4;
  }
  return out;
}

Counter& HitCounter() {
  static Counter* c = &MetricsRegistry::Global().GetCounter("stream.chunk_hits");
  return *c;
}
Counter& MissCounter() {
  static Counter* c =
      &MetricsRegistry::Global().GetCounter("stream.chunk_misses");
  return *c;
}
Counter& CorruptCounter() {
  static Counter* c =
      &MetricsRegistry::Global().GetCounter("stream.chunk_corrupt");
  return *c;
}
Counter& StoreCounter() {
  static Counter* c =
      &MetricsRegistry::Global().GetCounter("stream.chunk_stores");
  return *c;
}
Counter& StoreFailureCounter() {
  static Counter* c =
      &MetricsRegistry::Global().GetCounter("stream.chunk_store_failures");
  return *c;
}

}  // namespace

ChunkCheckpointer::ChunkCheckpointer(std::string dir, std::string label)
    : dir_(std::move(dir)), label_(std::move(label)), chain_(kFnvOffset) {}

void ChunkCheckpointer::Mix(std::string_view bytes) {
  chain_ = MixInto(chain_, bytes);
}

uint64_t ChunkCheckpointer::MixChunk(std::string_view raw_bytes) {
  chain_ = MixInto(chain_, raw_bytes);
  return chain_;
}

std::string ChunkCheckpointer::ChunkPath(uint64_t index, uint64_t key) const {
  return dir_ + "/chunk." + label_ + "." + std::to_string(index) + "." +
         HexU64(key) + ".ckpt";
}

std::optional<ArtifactReader> ChunkCheckpointer::TryLoad(uint64_t index,
                                                         uint64_t key) {
  if (!enabled()) return std::nullopt;
  Result<std::string> bytes = ReadFileBytes(ChunkPath(index, key));
  if (!bytes.ok()) {
    MissCounter().Increment();
    return std::nullopt;
  }
  Result<ArtifactReader> doc =
      ArtifactReader::Parse(std::move(bytes).ValueOrDie(), kKind, kVersion);
  if (!doc.ok()) {
    CorruptCounter().Increment();
    MissCounter().Increment();
    return std::nullopt;
  }
  HitCounter().Increment();
  return std::move(doc).ValueOrDie();
}

void ChunkCheckpointer::Store(uint64_t index, uint64_t key,
                              const ArtifactWriter& doc) {
  if (!enabled()) return;
  {
    std::lock_guard<std::mutex> lock(dir_mu_);
    if (!dir_ready_) {
      if (::mkdir(dir_.c_str(), 0777) != 0 && errno != EEXIST) {
        StoreFailureCounter().Increment();
        return;
      }
      dir_ready_ = true;
    }
  }
  Status status = AtomicWriteFile(ChunkPath(index, key), doc.Finish());
  if (status.ok()) {
    StoreCounter().Increment();
  } else {
    StoreFailureCounter().Increment();
  }
}

void AppendRngState(const Rng& rng, ByteWriter* writer) {
  writer->PutString(rng.SaveState());
}

Status ReadRngState(ByteReader* reader, Rng* rng) {
  std::string state;
  GREATER_RETURN_NOT_OK(reader->GetString(&state));
  if (!rng->LoadState(state)) {
    return Status::DataLoss("chunk checkpoint holds a malformed RNG state");
  }
  return Status::OK();
}

}  // namespace greater
