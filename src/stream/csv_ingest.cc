#include "stream/csv_ingest.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/fault.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "stream/bounded_queue.h"
#include "stream/stream_runtime.h"

namespace greater {
namespace {

// Unit of work flowing reader -> parse workers. A checkpoint hit rides
// the same path as raw records (preloaded short-circuits the parse), so
// chunk order stays inside the bounded queues and the sink's reorder
// buffer can never grow past workers + queue capacity.
struct ChunkTask {
  uint64_t seq = 0;
  uint64_t key = 0;
  std::vector<CsvRecordSplitter::Record> records;
  std::unique_ptr<CsvChunk> preloaded;
};

void EncodeChunk(const CsvChunk& chunk, ArtifactWriter* doc) {
  ByteWriter flags;
  flags.PutU32(static_cast<uint32_t>(chunk.flags.size()));
  for (const CsvColumnFlags& f : chunk.flags) {
    flags.PutBool(f.any_value);
    flags.PutBool(f.all_int);
    flags.PutBool(f.all_double);
  }
  doc->AddChunk("flags", std::move(flags).Take());

  ByteWriter rows;
  rows.PutU32(static_cast<uint32_t>(chunk.rows.size()));
  for (const auto& row : chunk.rows) {
    for (const std::string& cell : row) rows.PutString(cell);
  }
  doc->AddChunk("rows", std::move(rows).Take());

  ByteWriter quar;
  quar.PutU32(static_cast<uint32_t>(chunk.quarantined.size()));
  for (const QuarantinedRecord& q : chunk.quarantined) {
    quar.PutU64(q.record_number);
    quar.PutU32(static_cast<uint32_t>(q.why.code()));
    quar.PutString(q.why.message());
    quar.PutString(q.raw);
  }
  doc->AddChunk("quarantine", std::move(quar).Take());
}

Status DecodeChunk(const ArtifactReader& doc, const std::string& source,
                   size_t num_cols, CsvChunk* out) {
  GREATER_ASSIGN_OR_RETURN(std::string_view flag_bytes, doc.Chunk("flags"));
  ByteReader flags(flag_bytes);
  uint32_t ncols = 0;
  GREATER_RETURN_NOT_OK(flags.GetU32(&ncols));
  if (ncols != num_cols) {
    return Status::DataLoss("chunk checkpoint has " + std::to_string(ncols) +
                            " columns, header has " +
                            std::to_string(num_cols));
  }
  out->flags.resize(ncols);
  for (uint32_t c = 0; c < ncols; ++c) {
    GREATER_RETURN_NOT_OK(flags.GetBool(&out->flags[c].any_value));
    GREATER_RETURN_NOT_OK(flags.GetBool(&out->flags[c].all_int));
    GREATER_RETURN_NOT_OK(flags.GetBool(&out->flags[c].all_double));
  }
  GREATER_RETURN_NOT_OK(flags.ExpectEnd());

  GREATER_ASSIGN_OR_RETURN(std::string_view row_bytes, doc.Chunk("rows"));
  ByteReader rows(row_bytes);
  uint32_t nrows = 0;
  GREATER_RETURN_NOT_OK(rows.GetU32(&nrows));
  out->rows.resize(nrows);
  for (uint32_t r = 0; r < nrows; ++r) {
    out->rows[r].resize(num_cols);
    for (size_t c = 0; c < num_cols; ++c) {
      GREATER_RETURN_NOT_OK(rows.GetString(&out->rows[r][c]));
    }
  }
  GREATER_RETURN_NOT_OK(rows.ExpectEnd());

  GREATER_ASSIGN_OR_RETURN(std::string_view quar_bytes,
                           doc.Chunk("quarantine"));
  ByteReader quar(quar_bytes);
  uint32_t nquar = 0;
  GREATER_RETURN_NOT_OK(quar.GetU32(&nquar));
  out->quarantined.resize(nquar);
  for (uint32_t i = 0; i < nquar; ++i) {
    QuarantinedRecord& q = out->quarantined[i];
    q.source = source;
    GREATER_RETURN_NOT_OK(quar.GetU64(&q.record_number));
    uint32_t code = 0;
    std::string message;
    GREATER_RETURN_NOT_OK(quar.GetU32(&code));
    GREATER_RETURN_NOT_OK(quar.GetString(&message));
    GREATER_RETURN_NOT_OK(quar.GetString(&q.raw));
    if (code > static_cast<uint32_t>(StatusCode::kDeadlineExceeded)) {
      return Status::DataLoss("chunk checkpoint has an unknown status code");
    }
    q.why = Status(static_cast<StatusCode>(code), std::move(message));
  }
  return quar.ExpectEnd();
}

// Pulls input blocks; an empty string means end of input.
using BlockSource = std::function<Result<std::string>()>;

}  // namespace

// Owns the running pipeline. Queues are declared before the runtime so
// they outlive it: the runtime's destructor joins every worker, and
// workers touch the queues until they exit.
struct CsvChunkReader::Impl {
  Impl(const CsvReadOptions& csv_in, const StreamOptions& stream_in,
       StreamPolicy policy_in, std::string label)
      : csv(csv_in),
        stream(stream_in),
        policy(policy_in),
        source_label(std::move(label)),
        chunk_rows(std::max<size_t>(1, stream_in.chunk_rows)),
        num_workers(std::max<size_t>(1, stream_in.num_workers)),
        raw_q("ingest.raw", stream_in.queue_capacity),
        parsed_q("ingest.parsed", stream_in.queue_capacity),
        runtime(stream_in),
        live_workers(num_workers) {}

  CsvReadOptions csv;
  StreamOptions stream;
  StreamPolicy policy;
  std::string source_label;
  size_t chunk_rows;
  size_t num_workers;
  size_t num_cols = 0;
  std::vector<std::string> header_fields;

  StreamIngestReport local_report;
  StreamIngestReport* report = nullptr;
  QuarantineWriter count_only{""};
  QuarantineWriter* quarantine = nullptr;
  ChunkCheckpointer* ckpt = nullptr;

  BoundedQueue<std::unique_ptr<ChunkTask>> raw_q;
  BoundedQueue<std::unique_ptr<CsvChunk>> parsed_q;
  StreamRuntime runtime;
  std::atomic<size_t> live_workers;

  // --- sink state (caller thread only) ---
  std::map<uint64_t, std::unique_ptr<CsvChunk>> pending;
  uint64_t next_seq = 0;
  Status sink_error;      // first quarantine-write failure
  bool finished = false;  // pipeline joined
  Status final_status;    // runtime.Finish() outcome

  Status Start(BlockSource next_block);
  Status FinishPipeline();
};

Status CsvChunkReader::Impl::Start(BlockSource next_block) {
  // The header is consumed up front: workers validate against it and the
  // chain must cover it before any chunk.
  CsvRecordSplitter splitter(csv.delimiter);
  splitter.set_max_record_bytes(stream.max_record_bytes);
  CsvRecordSplitter::Record header;
  for (bool have_header = false; !have_header;) {
    GREATER_ASSIGN_OR_RETURN(CsvRecordSplitter::Next next,
                             splitter.NextRecord(&header));
    switch (next) {
      case CsvRecordSplitter::Next::kRecord:
        have_header = true;
        break;
      case CsvRecordSplitter::Next::kNeedMoreInput: {
        GREATER_ASSIGN_OR_RETURN(std::string block, next_block());
        if (block.empty()) {
          splitter.FinishInput();
        } else {
          splitter.Feed(block);
        }
        break;
      }
      case CsvRecordSplitter::Next::kEndOfInput:
        return Status::DataLoss("CSV has no header record");
    }
  }
  num_cols = header.fields.size();
  header_fields = header.fields;

  if (ckpt != nullptr) {
    // Options fingerprint: anything that changes what a chunk computes
    // must flip every chunk key.
    ByteWriter fp;
    fp.PutU8(static_cast<uint8_t>(csv.delimiter));
    fp.PutBool(csv.infer_types);
    fp.PutString(csv.null_token);
    fp.PutU64(chunk_rows);
    fp.PutU64(stream.max_record_bytes);
    fp.PutBool(policy == StreamPolicy::kLenient);
    ckpt->Mix(fp.bytes());
    ckpt->Mix(header.raw);
  }

  runtime.RegisterQueue(&raw_q);
  runtime.RegisterQueue(&parsed_q);

  // --- reader: split records, form chunks, probe the checkpoint store ---
  Heartbeat* reader_hb = runtime.AddHeartbeat("ingest.reader");
  runtime.Spawn(
      "ingest.reader", reader_hb,
      [this, reader_hb, next_block = std::move(next_block),
       spl = std::move(splitter)]() mutable -> Status {
        uint64_t seq = 0;
        auto task = std::make_unique<ChunkTask>();
        std::string chunk_raw;  // raw bytes of this chunk, for the chain
        auto flush_chunk = [&]() {
          task->seq = seq;
          task->key = ckpt != nullptr ? ckpt->MixChunk(chunk_raw) : 0;
          if (ckpt != nullptr) {
            std::optional<ArtifactReader> doc = ckpt->TryLoad(seq, task->key);
            if (doc.has_value()) {
              auto pre = std::make_unique<CsvChunk>();
              Status decoded =
                  DecodeChunk(*doc, source_label, num_cols, pre.get());
              if (decoded.ok()) {
                pre->seq = seq;
                pre->from_checkpoint = true;
                task->preloaded = std::move(pre);
                task->records.clear();
              } else {
                // Parsed as an artifact but not as a chunk document:
                // corrupt -> recompute from the raw records we still hold.
                MetricsRegistry::Global()
                    .GetCounter("stream.chunk_corrupt")
                    .Increment();
              }
            }
          }
          bool accepted = raw_q.Push(std::move(task));
          ++seq;
          task = std::make_unique<ChunkTask>();
          chunk_raw.clear();
          return accepted;
        };
        for (;;) {
          reader_hb->Beat();
          CsvRecordSplitter::Record record;
          Result<CsvRecordSplitter::Next> next = spl.NextRecord(&record);
          if (!next.ok()) {
            return next.status().WithContext("splitting records from '" +
                                             source_label + "'");
          }
          switch (*next) {
            case CsvRecordSplitter::Next::kRecord:
              chunk_raw += record.raw;
              chunk_raw += '\n';
              task->records.push_back(std::move(record));
              if (task->records.size() >= chunk_rows && !flush_chunk()) {
                return Status::OK();  // pipeline is shutting down
              }
              break;
            case CsvRecordSplitter::Next::kNeedMoreInput: {
              GREATER_ASSIGN_OR_RETURN(std::string block, next_block());
              if (block.empty()) {
                spl.FinishInput();
              } else {
                spl.Feed(block);
              }
              break;
            }
            case CsvRecordSplitter::Next::kEndOfInput:
              if (!task->records.empty() && !flush_chunk()) {
                return Status::OK();
              }
              raw_q.Close();
              return Status::OK();
          }
        }
      });

  // --- parse workers: validate, infer flags, checkpoint ---
  for (size_t w = 0; w < num_workers; ++w) {
    std::string name = "ingest.parse." + std::to_string(w);
    Heartbeat* hb = runtime.AddHeartbeat(name);
    runtime.Spawn(name, hb, [this, hb]() -> Status {
      for (;;) {
        hb->Beat();
        std::optional<std::unique_ptr<ChunkTask>> item = raw_q.Pop();
        if (!item.has_value()) break;  // closed and drained, or poisoned
        std::unique_ptr<ChunkTask> task = std::move(*item);
        if (FaultRegistry::AnyArmed()) {
          Status death = FaultRegistry::Global().Check("stream.worker_death");
          if (!death.ok()) {
            // Silent death: exit without reporting, without marking the
            // heartbeat done, and without closing the downstream queue.
            // Only the watchdog can notice.
            hb->SimulateDeath();
            return Status::OK();
          }
        }
        std::unique_ptr<CsvChunk> chunk;
        if (task->preloaded != nullptr) {
          chunk = std::move(task->preloaded);
        } else {
          GREATER_FAULT_POINT("stream.chunk_parse");
          chunk = std::make_unique<CsvChunk>();
          chunk->seq = task->seq;
          chunk->flags.assign(num_cols, CsvColumnFlags());
          for (CsvRecordSplitter::Record& record : task->records) {
            if (record.fields.size() != num_cols) {
              Status why = Status::DataLoss(
                  "CSV record " + std::to_string(record.number) + " has " +
                  std::to_string(record.fields.size()) +
                  " fields, header has " + std::to_string(num_cols));
              if (policy == StreamPolicy::kStrict) return why;
              QuarantinedRecord q;
              q.source = source_label;
              q.record_number = record.number;
              q.why = std::move(why);
              q.raw = std::move(record.raw);
              chunk->quarantined.push_back(std::move(q));
              continue;
            }
            for (size_t c = 0; c < num_cols; ++c) {
              const std::string& cell = record.fields[c];
              if (cell == csv.null_token) continue;
              CsvColumnFlags& f = chunk->flags[c];
              f.any_value = true;
              if (f.all_int && !ParseInt(cell).has_value()) f.all_int = false;
              if (f.all_double && !ParseDouble(cell).has_value()) {
                f.all_double = false;
              }
            }
            chunk->rows.push_back(std::move(record.fields));
          }
          if (ckpt != nullptr) {
            ArtifactWriter doc(ChunkCheckpointer::kKind,
                               ChunkCheckpointer::kVersion);
            EncodeChunk(*chunk, &doc);
            ckpt->Store(task->seq, task->key, doc);
          }
        }
        if (!parsed_q.Push(std::move(chunk))) break;
      }
      if (live_workers.fetch_sub(1) == 1) parsed_q.Close();
      return Status::OK();
    });
  }
  return Status::OK();
}

Status CsvChunkReader::Impl::FinishPipeline() {
  if (finished) return final_status;
  finished = true;
  final_status = runtime.Finish().WithContext("streaming CSV ingest from '" +
                                              source_label + "'");
  return final_status;
}

CsvChunkReader::CsvChunkReader(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}

CsvChunkReader::~CsvChunkReader() {
  if (impl_ != nullptr) {
    Status closed = Close();
    (void)closed;
  }
}

const std::vector<std::string>& CsvChunkReader::header() const {
  return impl_->header_fields;
}

Result<std::optional<CsvChunk>> CsvChunkReader::Next() {
  Impl& im = *impl_;
  for (;;) {
    if (im.finished) {
      GREATER_RETURN_NOT_OK(im.final_status);
      GREATER_RETURN_NOT_OK(im.sink_error);
      return std::optional<CsvChunk>();
    }
    auto ready = im.pending.find(im.next_seq);
    if (ready != im.pending.end()) {
      CsvChunk chunk = std::move(*ready->second);
      im.pending.erase(ready);
      ++im.next_seq;
      StreamIngestReport& report = *im.report;
      ++report.chunks;
      if (chunk.from_checkpoint) ++report.chunk_checkpoint_hits;
      report.rows_in += chunk.rows.size() + chunk.quarantined.size();
      report.rows_out += chunk.rows.size();
      report.quarantined += chunk.quarantined.size();
      for (const QuarantinedRecord& q : chunk.quarantined) {
        Status wrote = im.quarantine->Write(q);
        if (!wrote.ok() && im.sink_error.ok()) im.sink_error = wrote;
      }
      return std::optional<CsvChunk>(std::move(chunk));
    }
    std::optional<std::unique_ptr<CsvChunk>> item = im.parsed_q.Pop();
    if (!item.has_value()) {
      // End of stream, or a poisoned pipeline: join and report with the
      // same precedence as the materializing reader — pipeline error,
      // then quarantine sink error, then lost-chunk accounting.
      GREATER_RETURN_NOT_OK(im.FinishPipeline());
      GREATER_RETURN_NOT_OK(im.sink_error);
      if (!im.pending.empty()) {
        return Status::Internal("streaming ingest lost chunk " +
                                std::to_string(im.next_seq) + " of '" +
                                im.source_label + "'");
      }
      return std::optional<CsvChunk>();
    }
    im.pending[(*item)->seq] = std::move(*item);
  }
}

Status CsvChunkReader::Close() {
  Impl& im = *impl_;
  if (im.finished) return im.final_status;
  // Early shutdown: closing both queues unblocks every producer (Push
  // returns false) and consumer, so workers drain and exit; the join then
  // proceeds without deadlock.
  im.raw_q.Close();
  im.parsed_q.Close();
  return im.FinishPipeline();
}

Result<std::unique_ptr<CsvChunkReader>> CsvChunkReader::OpenFile(
    const std::string& path, const CsvReadOptions& csv_options,
    const StreamOptions& options, StreamPolicy policy,
    StreamIngestReport* report, ChunkCheckpointer* checkpointer,
    QuarantineWriter* quarantine) {
  auto in = std::make_shared<std::ifstream>(path, std::ios::binary);
  if (!*in) {
    return Status::NotFound("cannot open CSV file '" + path + "'");
  }
  size_t block_bytes = std::max<size_t>(1, options.io_block_bytes);
  BlockSource source = [in, block_bytes, path]() -> Result<std::string> {
    std::string block(block_bytes, '\0');
    in->read(block.data(), static_cast<std::streamsize>(block_bytes));
    std::streamsize got = in->gcount();
    if (got == 0 && in->bad()) {
      return Status::Internal("I/O error reading CSV file '" + path + "'");
    }
    block.resize(static_cast<size_t>(got));
    return block;
  };
  auto impl = std::make_unique<Impl>(csv_options, options, policy, path);
  impl->report = report != nullptr ? report : &impl->local_report;
  *impl->report = StreamIngestReport();
  impl->quarantine = quarantine != nullptr ? quarantine : &impl->count_only;
  impl->ckpt = checkpointer;
  GREATER_RETURN_NOT_OK(impl->Start(std::move(source)));
  return std::unique_ptr<CsvChunkReader>(new CsvChunkReader(std::move(impl)));
}

Result<std::unique_ptr<CsvChunkReader>> CsvChunkReader::OpenString(
    const std::string& text, const CsvReadOptions& csv_options,
    const StreamOptions& options, StreamPolicy policy,
    StreamIngestReport* report, ChunkCheckpointer* checkpointer,
    QuarantineWriter* quarantine, const std::string& source_label) {
  size_t block_bytes = std::max<size_t>(1, options.io_block_bytes);
  auto copy = std::make_shared<std::string>(text);
  auto offset = std::make_shared<size_t>(0);
  BlockSource source = [copy, offset, block_bytes]() -> Result<std::string> {
    if (*offset >= copy->size()) return std::string();
    size_t n = std::min(block_bytes, copy->size() - *offset);
    std::string block = copy->substr(*offset, n);
    *offset += n;
    return block;
  };
  auto impl =
      std::make_unique<Impl>(csv_options, options, policy, source_label);
  impl->report = report != nullptr ? report : &impl->local_report;
  *impl->report = StreamIngestReport();
  impl->quarantine = quarantine != nullptr ? quarantine : &impl->count_only;
  impl->ckpt = checkpointer;
  GREATER_RETURN_NOT_OK(impl->Start(std::move(source)));
  return std::unique_ptr<CsvChunkReader>(new CsvChunkReader(std::move(impl)));
}

Result<Schema> SchemaFromCsvFlags(const std::vector<std::string>& header,
                                  const std::vector<CsvColumnFlags>& merged,
                                  bool infer_types) {
  const size_t num_cols = header.size();
  std::vector<ValueType> types(num_cols, ValueType::kInt);
  if (!infer_types) {
    types.assign(num_cols, ValueType::kString);
  } else {
    for (size_t c = 0; c < num_cols; ++c) {
      if (!merged[c].any_value) {
        types[c] = ValueType::kString;
      } else if (merged[c].all_int) {
        types[c] = ValueType::kInt;
      } else if (merged[c].all_double) {
        types[c] = ValueType::kDouble;
      } else {
        types[c] = ValueType::kString;
      }
    }
  }
  std::vector<Field> fields;
  fields.reserve(num_cols);
  for (size_t c = 0; c < num_cols; ++c) {
    SemanticType semantic = types[c] == ValueType::kDouble
                                ? SemanticType::kContinuous
                                : SemanticType::kCategorical;
    fields.emplace_back(header[c], types[c], semantic);
  }
  return Schema::Make(std::move(fields));
}

Result<Table> CsvRowsToTable(
    const Schema& schema, const std::vector<std::vector<std::string>>& rows,
    const std::string& null_token) {
  const size_t num_cols = schema.num_fields();
  Table table(schema);
  for (const auto& row_cells : rows) {
    Row row;
    row.reserve(num_cols);
    for (size_t c = 0; c < num_cols; ++c) {
      const std::string& cell = row_cells[c];
      if (cell == null_token) {
        row.push_back(Value::Null());
        continue;
      }
      switch (schema.field(c).type) {
        case ValueType::kInt: {
          std::optional<int64_t> parsed = ParseInt(cell);
          if (!parsed.has_value()) {
            return Status::DataLoss("cell '" + cell +
                                    "' does not parse as int in column '" +
                                    schema.field(c).name + "'");
          }
          row.push_back(Value(*parsed));
          break;
        }
        case ValueType::kDouble: {
          std::optional<double> parsed = ParseDouble(cell);
          if (!parsed.has_value()) {
            return Status::DataLoss("cell '" + cell +
                                    "' does not parse as double in column '" +
                                    schema.field(c).name + "'");
          }
          row.push_back(Value(*parsed));
          break;
        }
        default:
          row.push_back(Value(cell));
      }
    }
    GREATER_RETURN_NOT_OK(table.AppendRow(std::move(row)));
  }
  return table;
}

namespace {

void MergeChunkFlags(const CsvChunk& chunk,
                     std::vector<CsvColumnFlags>* merged) {
  for (size_t c = 0; c < merged->size(); ++c) {
    (*merged)[c].any_value |=
        chunk.flags.empty() ? false : chunk.flags[c].any_value;
    (*merged)[c].all_int &= chunk.flags.empty() || chunk.flags[c].all_int;
    (*merged)[c].all_double &=
        chunk.flags.empty() || chunk.flags[c].all_double;
  }
}

// Shared drain for the materializing entry points: pull every chunk in
// order, merge flags, collect rows, then finalize with the exact
// ReadCsvString type-inference semantics.
Result<Table> DrainToTable(CsvChunkReader* reader,
                           const CsvReadOptions& csv) {
  const size_t num_cols = reader->header().size();
  std::vector<CsvColumnFlags> merged(num_cols);
  std::vector<std::vector<std::string>> all_rows;
  for (;;) {
    GREATER_ASSIGN_OR_RETURN(std::optional<CsvChunk> chunk, reader->Next());
    if (!chunk.has_value()) break;
    MergeChunkFlags(*chunk, &merged);
    for (auto& row : chunk->rows) all_rows.push_back(std::move(row));
  }
  GREATER_RETURN_NOT_OK(reader->Close());
  GREATER_ASSIGN_OR_RETURN(
      Schema schema,
      SchemaFromCsvFlags(reader->header(), merged, csv.infer_types));
  return CsvRowsToTable(schema, all_rows, csv.null_token);
}

}  // namespace

Result<Table> ReadCsvFileStreaming(const std::string& path,
                                   const CsvReadOptions& csv_options,
                                   const StreamOptions& options,
                                   StreamPolicy policy,
                                   StreamIngestReport* report,
                                   ChunkCheckpointer* checkpointer,
                                   QuarantineWriter* quarantine) {
  GREATER_FAULT_POINT("csv.read");
  Span span("stream.ingest");
  GREATER_ASSIGN_OR_RETURN(
      std::unique_ptr<CsvChunkReader> reader,
      CsvChunkReader::OpenFile(path, csv_options, options, policy, report,
                               checkpointer, quarantine));
  return DrainToTable(reader.get(), csv_options);
}

Result<Table> ReadCsvStringStreaming(const std::string& text,
                                     const CsvReadOptions& csv_options,
                                     const StreamOptions& options,
                                     StreamPolicy policy,
                                     StreamIngestReport* report,
                                     ChunkCheckpointer* checkpointer,
                                     QuarantineWriter* quarantine,
                                     const std::string& source_label) {
  GREATER_FAULT_POINT("csv.read");
  Span span("stream.ingest");
  GREATER_ASSIGN_OR_RETURN(
      std::unique_ptr<CsvChunkReader> reader,
      CsvChunkReader::OpenString(text, csv_options, options, policy, report,
                                 checkpointer, quarantine, source_label));
  return DrainToTable(reader.get(), csv_options);
}

Result<Schema> InferCsvSchemaStreaming(const std::string& path,
                                       const CsvReadOptions& csv_options,
                                       const StreamOptions& options,
                                       StreamPolicy policy,
                                       StreamIngestReport* report,
                                       ChunkCheckpointer* checkpointer,
                                       QuarantineWriter* quarantine) {
  Span span("stream.schema");
  GREATER_ASSIGN_OR_RETURN(
      std::unique_ptr<CsvChunkReader> reader,
      CsvChunkReader::OpenFile(path, csv_options, options, policy, report,
                               checkpointer, quarantine));
  const size_t num_cols = reader->header().size();
  std::vector<CsvColumnFlags> merged(num_cols);
  for (;;) {
    GREATER_ASSIGN_OR_RETURN(std::optional<CsvChunk> chunk, reader->Next());
    if (!chunk.has_value()) break;
    MergeChunkFlags(*chunk, &merged);
  }
  GREATER_RETURN_NOT_OK(reader->Close());
  return SchemaFromCsvFlags(reader->header(), merged,
                            csv_options.infer_types);
}

}  // namespace greater
