#include "stream/csv_ingest.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/fault.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "stream/bounded_queue.h"
#include "stream/stream_runtime.h"

namespace greater {
namespace {

// Per-column type-inference accumulator: merged across chunks with
// OR/AND/AND, reproducing ReadCsvString's whole-column scan exactly.
struct ColumnFlags {
  bool any_value = false;
  bool all_int = true;
  bool all_double = true;
};

struct ParsedChunk {
  uint64_t seq = 0;
  std::vector<std::vector<std::string>> rows;  // kept records' fields
  std::vector<ColumnFlags> flags;              // one per column
  std::vector<QuarantinedRecord> quarantined;
  bool from_checkpoint = false;
};

// Unit of work flowing reader -> parse workers. A checkpoint hit rides
// the same path as raw records (preloaded short-circuits the parse), so
// chunk order stays inside the bounded queues and the sink's reorder
// buffer can never grow past workers + queue capacity.
struct ChunkTask {
  uint64_t seq = 0;
  uint64_t key = 0;
  std::vector<CsvRecordSplitter::Record> records;
  std::unique_ptr<ParsedChunk> preloaded;
};

void EncodeChunk(const ParsedChunk& chunk, ArtifactWriter* doc) {
  ByteWriter flags;
  flags.PutU32(static_cast<uint32_t>(chunk.flags.size()));
  for (const ColumnFlags& f : chunk.flags) {
    flags.PutBool(f.any_value);
    flags.PutBool(f.all_int);
    flags.PutBool(f.all_double);
  }
  doc->AddChunk("flags", std::move(flags).Take());

  ByteWriter rows;
  rows.PutU32(static_cast<uint32_t>(chunk.rows.size()));
  for (const auto& row : chunk.rows) {
    for (const std::string& cell : row) rows.PutString(cell);
  }
  doc->AddChunk("rows", std::move(rows).Take());

  ByteWriter quar;
  quar.PutU32(static_cast<uint32_t>(chunk.quarantined.size()));
  for (const QuarantinedRecord& q : chunk.quarantined) {
    quar.PutU64(q.record_number);
    quar.PutU32(static_cast<uint32_t>(q.why.code()));
    quar.PutString(q.why.message());
    quar.PutString(q.raw);
  }
  doc->AddChunk("quarantine", std::move(quar).Take());
}

Status DecodeChunk(const ArtifactReader& doc, const std::string& source,
                   size_t num_cols, ParsedChunk* out) {
  GREATER_ASSIGN_OR_RETURN(std::string_view flag_bytes, doc.Chunk("flags"));
  ByteReader flags(flag_bytes);
  uint32_t ncols = 0;
  GREATER_RETURN_NOT_OK(flags.GetU32(&ncols));
  if (ncols != num_cols) {
    return Status::DataLoss("chunk checkpoint has " + std::to_string(ncols) +
                            " columns, header has " +
                            std::to_string(num_cols));
  }
  out->flags.resize(ncols);
  for (uint32_t c = 0; c < ncols; ++c) {
    GREATER_RETURN_NOT_OK(flags.GetBool(&out->flags[c].any_value));
    GREATER_RETURN_NOT_OK(flags.GetBool(&out->flags[c].all_int));
    GREATER_RETURN_NOT_OK(flags.GetBool(&out->flags[c].all_double));
  }
  GREATER_RETURN_NOT_OK(flags.ExpectEnd());

  GREATER_ASSIGN_OR_RETURN(std::string_view row_bytes, doc.Chunk("rows"));
  ByteReader rows(row_bytes);
  uint32_t nrows = 0;
  GREATER_RETURN_NOT_OK(rows.GetU32(&nrows));
  out->rows.resize(nrows);
  for (uint32_t r = 0; r < nrows; ++r) {
    out->rows[r].resize(num_cols);
    for (size_t c = 0; c < num_cols; ++c) {
      GREATER_RETURN_NOT_OK(rows.GetString(&out->rows[r][c]));
    }
  }
  GREATER_RETURN_NOT_OK(rows.ExpectEnd());

  GREATER_ASSIGN_OR_RETURN(std::string_view quar_bytes,
                           doc.Chunk("quarantine"));
  ByteReader quar(quar_bytes);
  uint32_t nquar = 0;
  GREATER_RETURN_NOT_OK(quar.GetU32(&nquar));
  out->quarantined.resize(nquar);
  for (uint32_t i = 0; i < nquar; ++i) {
    QuarantinedRecord& q = out->quarantined[i];
    q.source = source;
    GREATER_RETURN_NOT_OK(quar.GetU64(&q.record_number));
    uint32_t code = 0;
    std::string message;
    GREATER_RETURN_NOT_OK(quar.GetU32(&code));
    GREATER_RETURN_NOT_OK(quar.GetString(&message));
    GREATER_RETURN_NOT_OK(quar.GetString(&q.raw));
    if (code > static_cast<uint32_t>(StatusCode::kDeadlineExceeded)) {
      return Status::DataLoss("chunk checkpoint has an unknown status code");
    }
    q.why = Status(static_cast<StatusCode>(code), std::move(message));
  }
  return quar.ExpectEnd();
}

// Pulls input blocks; an empty string means end of input.
using BlockSource = std::function<Result<std::string>()>;

Result<Table> RunStreamingIngest(const BlockSource& next_block,
                                 const std::string& source_label,
                                 const CsvReadOptions& csv,
                                 const StreamOptions& options,
                                 StreamPolicy policy,
                                 StreamIngestReport* report,
                                 ChunkCheckpointer* ckpt,
                                 QuarantineWriter* quarantine) {
  GREATER_FAULT_POINT("csv.read");
  Span span("stream.ingest");
  StreamIngestReport local_report;
  if (report == nullptr) report = &local_report;
  *report = StreamIngestReport();
  QuarantineWriter count_only("");
  if (quarantine == nullptr) quarantine = &count_only;

  const size_t chunk_rows = std::max<size_t>(1, options.chunk_rows);
  const size_t num_workers = std::max<size_t>(1, options.num_workers);

  // The header is consumed up front: workers validate against it and the
  // chain must cover it before any chunk.
  CsvRecordSplitter splitter(csv.delimiter);
  splitter.set_max_record_bytes(options.max_record_bytes);
  CsvRecordSplitter::Record header;
  for (bool have_header = false; !have_header;) {
    GREATER_ASSIGN_OR_RETURN(CsvRecordSplitter::Next next,
                             splitter.NextRecord(&header));
    switch (next) {
      case CsvRecordSplitter::Next::kRecord:
        have_header = true;
        break;
      case CsvRecordSplitter::Next::kNeedMoreInput: {
        GREATER_ASSIGN_OR_RETURN(std::string block, next_block());
        if (block.empty()) {
          splitter.FinishInput();
        } else {
          splitter.Feed(block);
        }
        break;
      }
      case CsvRecordSplitter::Next::kEndOfInput:
        return Status::DataLoss("CSV has no header record");
    }
  }
  const size_t num_cols = header.fields.size();

  if (ckpt != nullptr) {
    // Options fingerprint: anything that changes what a chunk computes
    // must flip every chunk key.
    ByteWriter fp;
    fp.PutU8(static_cast<uint8_t>(csv.delimiter));
    fp.PutBool(csv.infer_types);
    fp.PutString(csv.null_token);
    fp.PutU64(chunk_rows);
    fp.PutU64(options.max_record_bytes);
    fp.PutBool(policy == StreamPolicy::kLenient);
    ckpt->Mix(fp.bytes());
    ckpt->Mix(header.raw);
  }

  // Queues are declared before the runtime so they outlive it: the
  // runtime's destructor joins every worker, and workers touch the queues
  // until they exit.
  BoundedQueue<std::unique_ptr<ChunkTask>> raw_q("ingest.raw",
                                                 options.queue_capacity);
  BoundedQueue<std::unique_ptr<ParsedChunk>> parsed_q("ingest.parsed",
                                                      options.queue_capacity);
  StreamRuntime runtime(options);
  runtime.RegisterQueue(&raw_q);
  runtime.RegisterQueue(&parsed_q);
  std::atomic<size_t> live_workers{num_workers};

  // --- reader: split records, form chunks, probe the checkpoint store ---
  Heartbeat* reader_hb = runtime.AddHeartbeat("ingest.reader");
  runtime.Spawn(
      "ingest.reader", reader_hb,
      [&, reader_hb, spl = std::move(splitter)]() mutable -> Status {
        uint64_t seq = 0;
        auto task = std::make_unique<ChunkTask>();
        std::string chunk_raw;  // raw bytes of this chunk, for the chain
        auto flush_chunk = [&]() {
          task->seq = seq;
          task->key = ckpt != nullptr ? ckpt->MixChunk(chunk_raw) : 0;
          if (ckpt != nullptr) {
            std::optional<ArtifactReader> doc = ckpt->TryLoad(seq, task->key);
            if (doc.has_value()) {
              auto pre = std::make_unique<ParsedChunk>();
              Status decoded =
                  DecodeChunk(*doc, source_label, num_cols, pre.get());
              if (decoded.ok()) {
                pre->seq = seq;
                pre->from_checkpoint = true;
                task->preloaded = std::move(pre);
                task->records.clear();
              } else {
                // Parsed as an artifact but not as a chunk document:
                // corrupt -> recompute from the raw records we still hold.
                MetricsRegistry::Global()
                    .GetCounter("stream.chunk_corrupt")
                    .Increment();
              }
            }
          }
          bool accepted = raw_q.Push(std::move(task));
          ++seq;
          task = std::make_unique<ChunkTask>();
          chunk_raw.clear();
          return accepted;
        };
        for (;;) {
          reader_hb->Beat();
          CsvRecordSplitter::Record record;
          Result<CsvRecordSplitter::Next> next = spl.NextRecord(&record);
          if (!next.ok()) {
            return next.status().WithContext("splitting records from '" +
                                             source_label + "'");
          }
          switch (*next) {
            case CsvRecordSplitter::Next::kRecord:
              chunk_raw += record.raw;
              chunk_raw += '\n';
              task->records.push_back(std::move(record));
              if (task->records.size() >= chunk_rows && !flush_chunk()) {
                return Status::OK();  // pipeline is shutting down
              }
              break;
            case CsvRecordSplitter::Next::kNeedMoreInput: {
              GREATER_ASSIGN_OR_RETURN(std::string block, next_block());
              if (block.empty()) {
                spl.FinishInput();
              } else {
                spl.Feed(block);
              }
              break;
            }
            case CsvRecordSplitter::Next::kEndOfInput:
              if (!task->records.empty() && !flush_chunk()) {
                return Status::OK();
              }
              raw_q.Close();
              return Status::OK();
          }
        }
      });

  // --- parse workers: validate, infer flags, checkpoint ---
  for (size_t w = 0; w < num_workers; ++w) {
    std::string name = "ingest.parse." + std::to_string(w);
    Heartbeat* hb = runtime.AddHeartbeat(name);
    runtime.Spawn(name, hb, [&, hb]() -> Status {
      for (;;) {
        hb->Beat();
        std::optional<std::unique_ptr<ChunkTask>> item = raw_q.Pop();
        if (!item.has_value()) break;  // closed and drained, or poisoned
        std::unique_ptr<ChunkTask> task = std::move(*item);
        if (FaultRegistry::AnyArmed()) {
          Status death = FaultRegistry::Global().Check("stream.worker_death");
          if (!death.ok()) {
            // Silent death: exit without reporting, without marking the
            // heartbeat done, and without closing the downstream queue.
            // Only the watchdog can notice.
            hb->SimulateDeath();
            return Status::OK();
          }
        }
        std::unique_ptr<ParsedChunk> chunk;
        if (task->preloaded != nullptr) {
          chunk = std::move(task->preloaded);
        } else {
          GREATER_FAULT_POINT("stream.chunk_parse");
          chunk = std::make_unique<ParsedChunk>();
          chunk->seq = task->seq;
          chunk->flags.assign(num_cols, ColumnFlags());
          for (CsvRecordSplitter::Record& record : task->records) {
            if (record.fields.size() != num_cols) {
              Status why = Status::DataLoss(
                  "CSV record " + std::to_string(record.number) + " has " +
                  std::to_string(record.fields.size()) +
                  " fields, header has " + std::to_string(num_cols));
              if (policy == StreamPolicy::kStrict) return why;
              QuarantinedRecord q;
              q.source = source_label;
              q.record_number = record.number;
              q.why = std::move(why);
              q.raw = std::move(record.raw);
              chunk->quarantined.push_back(std::move(q));
              continue;
            }
            for (size_t c = 0; c < num_cols; ++c) {
              const std::string& cell = record.fields[c];
              if (cell == csv.null_token) continue;
              ColumnFlags& f = chunk->flags[c];
              f.any_value = true;
              if (f.all_int && !ParseInt(cell).has_value()) f.all_int = false;
              if (f.all_double && !ParseDouble(cell).has_value()) {
                f.all_double = false;
              }
            }
            chunk->rows.push_back(std::move(record.fields));
          }
          if (ckpt != nullptr) {
            ArtifactWriter doc(ChunkCheckpointer::kKind,
                               ChunkCheckpointer::kVersion);
            EncodeChunk(*chunk, &doc);
            ckpt->Store(task->seq, task->key, doc);
          }
        }
        if (!parsed_q.Push(std::move(chunk))) break;
      }
      if (live_workers.fetch_sub(1) == 1) parsed_q.Close();
      return Status::OK();
    });
  }

  // --- sink (caller thread): reorder by sequence, accumulate, account ---
  std::map<uint64_t, std::unique_ptr<ParsedChunk>> pending;
  uint64_t next_seq = 0;
  std::vector<std::vector<std::string>> all_rows;
  std::vector<ColumnFlags> merged(num_cols);
  Status sink_error;
  while (true) {
    std::optional<std::unique_ptr<ParsedChunk>> item = parsed_q.Pop();
    if (!item.has_value()) break;
    pending[(*item)->seq] = std::move(*item);
    for (auto it = pending.find(next_seq); it != pending.end();
         it = pending.find(++next_seq)) {
      ParsedChunk& chunk = *it->second;
      ++report->chunks;
      if (chunk.from_checkpoint) ++report->chunk_checkpoint_hits;
      report->rows_in += chunk.rows.size() + chunk.quarantined.size();
      report->rows_out += chunk.rows.size();
      report->quarantined += chunk.quarantined.size();
      for (size_t c = 0; c < num_cols; ++c) {
        merged[c].any_value |= chunk.flags.empty() ? false
                                                   : chunk.flags[c].any_value;
        merged[c].all_int &= chunk.flags.empty() || chunk.flags[c].all_int;
        merged[c].all_double &=
            chunk.flags.empty() || chunk.flags[c].all_double;
      }
      for (auto& row : chunk.rows) all_rows.push_back(std::move(row));
      for (const QuarantinedRecord& q : chunk.quarantined) {
        Status wrote = quarantine->Write(q);
        if (!wrote.ok() && sink_error.ok()) sink_error = wrote;
      }
      pending.erase(it);
    }
  }

  GREATER_RETURN_NOT_OK_CTX(runtime.Finish(), "streaming CSV ingest from '" +
                                                  source_label + "'");
  GREATER_RETURN_NOT_OK(sink_error);
  if (!pending.empty()) {
    return Status::Internal("streaming ingest lost chunk " +
                            std::to_string(next_seq) + " of '" +
                            source_label + "'");
  }

  // --- finalize: exact ReadCsvString type-inference semantics ---
  std::vector<ValueType> types(num_cols, ValueType::kInt);
  if (!csv.infer_types) {
    types.assign(num_cols, ValueType::kString);
  } else {
    for (size_t c = 0; c < num_cols; ++c) {
      if (!merged[c].any_value) {
        types[c] = ValueType::kString;
      } else if (merged[c].all_int) {
        types[c] = ValueType::kInt;
      } else if (merged[c].all_double) {
        types[c] = ValueType::kDouble;
      } else {
        types[c] = ValueType::kString;
      }
    }
  }
  std::vector<Field> fields;
  fields.reserve(num_cols);
  for (size_t c = 0; c < num_cols; ++c) {
    SemanticType semantic = types[c] == ValueType::kDouble
                                ? SemanticType::kContinuous
                                : SemanticType::kCategorical;
    fields.emplace_back(header.fields[c], types[c], semantic);
  }
  GREATER_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(fields)));
  Table table(std::move(schema));
  for (const auto& row_cells : all_rows) {
    Row row;
    row.reserve(num_cols);
    for (size_t c = 0; c < num_cols; ++c) {
      const std::string& cell = row_cells[c];
      if (cell == csv.null_token) {
        row.push_back(Value::Null());
        continue;
      }
      switch (types[c]) {
        case ValueType::kInt:
          row.push_back(Value(*ParseInt(cell)));
          break;
        case ValueType::kDouble:
          row.push_back(Value(*ParseDouble(cell)));
          break;
        default:
          row.push_back(Value(cell));
      }
    }
    GREATER_RETURN_NOT_OK(table.AppendRow(std::move(row)));
  }
  return table;
}

}  // namespace

Result<Table> ReadCsvFileStreaming(const std::string& path,
                                   const CsvReadOptions& csv_options,
                                   const StreamOptions& options,
                                   StreamPolicy policy,
                                   StreamIngestReport* report,
                                   ChunkCheckpointer* checkpointer,
                                   QuarantineWriter* quarantine) {
  auto in = std::make_shared<std::ifstream>(path, std::ios::binary);
  if (!*in) {
    return Status::NotFound("cannot open CSV file '" + path + "'");
  }
  size_t block_bytes = std::max<size_t>(1, options.io_block_bytes);
  BlockSource source = [in, block_bytes, path]() -> Result<std::string> {
    std::string block(block_bytes, '\0');
    in->read(block.data(), static_cast<std::streamsize>(block_bytes));
    std::streamsize got = in->gcount();
    if (got == 0 && in->bad()) {
      return Status::Internal("I/O error reading CSV file '" + path + "'");
    }
    block.resize(static_cast<size_t>(got));
    return block;
  };
  return RunStreamingIngest(source, path, csv_options, options, policy,
                            report, checkpointer, quarantine);
}

Result<Table> ReadCsvStringStreaming(const std::string& text,
                                     const CsvReadOptions& csv_options,
                                     const StreamOptions& options,
                                     StreamPolicy policy,
                                     StreamIngestReport* report,
                                     ChunkCheckpointer* checkpointer,
                                     QuarantineWriter* quarantine,
                                     const std::string& source_label) {
  size_t block_bytes = std::max<size_t>(1, options.io_block_bytes);
  auto offset = std::make_shared<size_t>(0);
  BlockSource source = [&text, offset, block_bytes]() -> Result<std::string> {
    if (*offset >= text.size()) return std::string();
    size_t n = std::min(block_bytes, text.size() - *offset);
    std::string block = text.substr(*offset, n);
    *offset += n;
    return block;
  };
  return RunStreamingIngest(source, source_label, csv_options, options,
                            policy, report, checkpointer, quarantine);
}

}  // namespace greater
