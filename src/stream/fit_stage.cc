#include "stream/fit_stage.h"

#include <memory>
#include <optional>
#include <utility>

namespace greater {

Result<FitStage> FitStage::Open(const std::string& csv_path,
                                const Options& options) {
  Schema schema;
  StreamIngestReport report;
  // A disabled checkpointer (empty dir) still advances the chain, so the
  // content fingerprint is available either way.
  ChunkCheckpointer ckpt(options.checkpoint_dir, options.checkpoint_label);
  GREATER_ASSIGN_OR_RETURN(
      schema, InferCsvSchemaStreaming(csv_path, options.csv, options.stream,
                                      options.policy, &report, &ckpt));
  FitStage stage(csv_path, options, std::move(schema));
  stage.report_ = report;
  stage.content_chain_ = ckpt.chain();
  return stage;
}

TableChunkSource FitStage::ChunkSource() {
  return [this]() -> Result<TableChunkStream> {
    // Each pass gets a fresh checkpointer (the chain restarts per pass)
    // over the shared store, and a fresh reader. Both live in shared
    // state owned by the stream closure; the checkpointer must outlive
    // the reader, whose workers store into it.
    struct PassState {
      std::unique_ptr<ChunkCheckpointer> ckpt;
      std::unique_ptr<CsvChunkReader> reader;
    };
    auto state = std::make_shared<PassState>();
    state->ckpt = std::make_unique<ChunkCheckpointer>(
        options_.checkpoint_dir, options_.checkpoint_label);
    GREATER_ASSIGN_OR_RETURN(
        state->reader,
        CsvChunkReader::OpenFile(csv_path_, options_.csv, options_.stream,
                                 options_.policy, &report_,
                                 state->ckpt.get()));
    return TableChunkStream(
        [this, state]() -> Result<std::optional<Table>> {
          GREATER_ASSIGN_OR_RETURN(std::optional<CsvChunk> chunk,
                                   state->reader->Next());
          if (!chunk.has_value()) {
            GREATER_RETURN_NOT_OK(state->reader->Close());
            return std::optional<Table>();
          }
          GREATER_ASSIGN_OR_RETURN(
              Table table, CsvRowsToTable(schema_, chunk->rows,
                                          options_.csv.null_token));
          return std::optional<Table>(std::move(table));
        });
  };
}

}  // namespace greater
