#include "stream/quarantine.h"

#include <string>

#include "obs/metrics.h"

namespace greater {
namespace {

Counter& QuarantinedCounter() {
  static Counter* counter =
      &MetricsRegistry::Global().GetCounter("stream.quarantined_records");
  return *counter;
}

// Minimal CSV field escaping for the quarantine file (same quoting rules
// as WriteCsvString).
std::string Escape(const std::string& field) {
  bool needs_quotes = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

QuarantineWriter::QuarantineWriter(std::string path) : path_(std::move(path)) {
  if (path_.empty()) return;
  out_.open(path_, std::ios::binary | std::ios::trunc);
  if (!out_) {
    open_failed_ = true;
    return;
  }
  out_ << "source,record_number,code,message,raw\n";
  out_.flush();
}

Status QuarantineWriter::Write(const QuarantinedRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  ++count_;
  QuarantinedCounter().Increment();
  if (path_.empty()) return Status::OK();
  if (open_failed_) {
    return Status::Internal("cannot open quarantine file '" + path_ + "'");
  }
  out_ << Escape(record.source) << ',' << record.record_number << ','
       << StatusCodeToString(record.why.code()) << ','
       << Escape(record.why.message()) << ',' << Escape(record.raw) << '\n';
  // Flush per record: quarantine evidence should survive a crash that
  // happens moments later.
  out_.flush();
  if (!out_) {
    return Status::Internal("failed writing quarantine file '" + path_ + "'");
  }
  return Status::OK();
}

uint64_t QuarantineWriter::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

}  // namespace greater
