#ifndef GREATER_STREAM_CSV_INGEST_H_
#define GREATER_STREAM_CSV_INGEST_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "stream/chunk_checkpoint.h"
#include "stream/quarantine.h"
#include "stream/stream_options.h"
#include "tabular/csv.h"
#include "tabular/schema.h"
#include "tabular/table.h"

namespace greater {

/// Chunked, bounded-memory CSV ingest on the streaming runtime.
///
/// Topology (all queues bounded by `options.queue_capacity` chunks):
///
///   reader thread ──raw_q──> parse workers ──parsed_q──> caller (sink)
///
/// The reader splits the file into records with CsvRecordSplitter (quoted
/// newlines may span read blocks), groups them into chunks of
/// `options.chunk_rows`, advances the chunk-hash chain with each chunk's
/// RAW bytes, and probes the chunk checkpoint store: a hit skips the parse
/// workers entirely. Workers validate field counts against the header —
/// strict policy fails the run with the same typed kDataLoss error the
/// in-memory reader produces; lenient policy diverts the record to the
/// quarantine channel — compute per-column type-inference flags, and
/// persist a per-chunk checkpoint. The caller's thread is the sink: a
/// sequence-number reorder buffer restores input order regardless of
/// worker count, so output is byte-identical to `ReadCsvFile` for any
/// (num_workers, io_block_bytes, chunk_rows) — same table, same inferred
/// types, same errors in strict mode.
///
/// Every input record is accounted for in `report`:
/// `rows_in == rows_out + quarantined` (StreamIngestReport::Reconciles),
/// including on a resumed run (checkpointed chunks re-emit their
/// quarantined records).
///
/// `checkpointer` (optional) must be freshly constructed per call — the
/// ingest seeds its chain with an options fingerprint and the chain then
/// advances with this file's bytes. `quarantine` (optional) receives
/// diverted records under the lenient policy; without it they are still
/// counted in the report and the `stream.quarantined_records` counter.
Result<Table> ReadCsvFileStreaming(const std::string& path,
                                   const CsvReadOptions& csv_options,
                                   const StreamOptions& options,
                                   StreamPolicy policy,
                                   StreamIngestReport* report = nullptr,
                                   ChunkCheckpointer* checkpointer = nullptr,
                                   QuarantineWriter* quarantine = nullptr);

/// In-memory variant (tests, embedded inputs): identical semantics, the
/// text is consumed in `options.io_block_bytes` blocks. `source_label`
/// names the input in quarantine provenance.
Result<Table> ReadCsvStringStreaming(const std::string& text,
                                     const CsvReadOptions& csv_options,
                                     const StreamOptions& options,
                                     StreamPolicy policy,
                                     StreamIngestReport* report = nullptr,
                                     ChunkCheckpointer* checkpointer = nullptr,
                                     QuarantineWriter* quarantine = nullptr,
                                     const std::string& source_label =
                                         "<memory>");

/// Per-column type-inference accumulator: merged across chunks with
/// OR/AND/AND, reproducing ReadCsvString's whole-column scan exactly.
struct CsvColumnFlags {
  bool any_value = false;
  bool all_int = true;
  bool all_double = true;
};

/// One in-order chunk of a streaming CSV pass: the kept records' raw
/// fields plus this chunk's type flags. Quarantined records were already
/// counted (and written, when a quarantine file is configured) by the
/// reader before the chunk was delivered.
struct CsvChunk {
  uint64_t seq = 0;
  std::vector<std::vector<std::string>> rows;
  std::vector<CsvColumnFlags> flags;
  std::vector<QuarantinedRecord> quarantined;
  bool from_checkpoint = false;
};

/// Pull-based chunked CSV reader — the same bounded-queue topology as
/// ReadCsvFileStreaming (reader thread ──raw_q──> parse workers
/// ──parsed_q──> caller), but the caller drains it one chunk at a time
/// through Next() instead of receiving a materialized Table. Backpressure
/// flows all the way to the file read: a slow consumer fills parsed_q,
/// which blocks the parse workers, which fills raw_q, which blocks the
/// reader — so peak memory is bounded by queue capacity times chunk size
/// no matter how large the file is. This is the primitive out-of-core fit
/// pulls typed chunks through.
///
/// Chunks arrive in input order (an internal sequence-number reorder
/// buffer absorbs worker reordering). Next() returns std::nullopt at
/// clean end of input and the pipeline's first error otherwise; the
/// report passed at open accumulates as chunks are delivered and
/// reconciles on a clean drain. Close() (also run by the destructor)
/// shuts the pipeline down early without waiting for the remaining
/// chunks.
class CsvChunkReader {
 public:
  /// Opens the file variant. Consumes the header before returning;
  /// `checkpointer` must be freshly constructed, as with
  /// ReadCsvFileStreaming.
  static Result<std::unique_ptr<CsvChunkReader>> OpenFile(
      const std::string& path, const CsvReadOptions& csv_options,
      const StreamOptions& options, StreamPolicy policy,
      StreamIngestReport* report = nullptr,
      ChunkCheckpointer* checkpointer = nullptr,
      QuarantineWriter* quarantine = nullptr);

  /// In-memory variant (tests, embedded inputs).
  static Result<std::unique_ptr<CsvChunkReader>> OpenString(
      const std::string& text, const CsvReadOptions& csv_options,
      const StreamOptions& options, StreamPolicy policy,
      StreamIngestReport* report = nullptr,
      ChunkCheckpointer* checkpointer = nullptr,
      QuarantineWriter* quarantine = nullptr,
      const std::string& source_label = "<memory>");

  ~CsvChunkReader();
  CsvChunkReader(const CsvChunkReader&) = delete;
  CsvChunkReader& operator=(const CsvChunkReader&) = delete;

  /// Header field names (consumed at open).
  const std::vector<std::string>& header() const;

  /// Next chunk in input order; std::nullopt at clean end of input.
  /// Returns the pipeline's first error (worker failure, watchdog
  /// conviction, strict-policy parse error) once the queues drain.
  Result<std::optional<CsvChunk>> Next();

  /// Stops the pipeline (early or after a drain), joins every worker, and
  /// returns the pipeline's terminal status. Idempotent.
  Status Close();

 private:
  struct Impl;
  explicit CsvChunkReader(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

/// Builds the inferred schema from the header and the flags merged across
/// every chunk — the exact ReadCsvString type-inference semantics
/// (int -> double -> string; value-less columns are string; continuous
/// semantic type for doubles, categorical otherwise).
Result<Schema> SchemaFromCsvFlags(const std::vector<std::string>& header,
                                  const std::vector<CsvColumnFlags>& merged,
                                  bool infer_types);

/// Schema-only streaming pass: runs the chunked topology, merges each
/// chunk's type flags, and drops the rows — peak memory is one queue's
/// worth of chunks. With a checkpointer, every chunk parsed here is
/// stored, so later passes over the same file (out-of-core fit's vocab
/// and count passes) are parse-free checkpoint hits.
Result<Schema> InferCsvSchemaStreaming(const std::string& path,
                                       const CsvReadOptions& csv_options,
                                       const StreamOptions& options,
                                       StreamPolicy policy,
                                       StreamIngestReport* report = nullptr,
                                       ChunkCheckpointer* checkpointer =
                                           nullptr,
                                       QuarantineWriter* quarantine = nullptr);

/// Converts one chunk's raw string rows into a typed Table under a fixed
/// schema (null_token cells become nulls). kDataLoss when a cell fails to
/// parse as its column's declared type — impossible when the schema was
/// inferred from the same input.
Result<Table> CsvRowsToTable(const Schema& schema,
                             const std::vector<std::vector<std::string>>& rows,
                             const std::string& null_token);

}  // namespace greater

#endif  // GREATER_STREAM_CSV_INGEST_H_
