#ifndef GREATER_STREAM_CSV_INGEST_H_
#define GREATER_STREAM_CSV_INGEST_H_

#include <string>

#include "common/status.h"
#include "stream/chunk_checkpoint.h"
#include "stream/quarantine.h"
#include "stream/stream_options.h"
#include "tabular/csv.h"
#include "tabular/table.h"

namespace greater {

/// Chunked, bounded-memory CSV ingest on the streaming runtime.
///
/// Topology (all queues bounded by `options.queue_capacity` chunks):
///
///   reader thread ──raw_q──> parse workers ──parsed_q──> caller (sink)
///
/// The reader splits the file into records with CsvRecordSplitter (quoted
/// newlines may span read blocks), groups them into chunks of
/// `options.chunk_rows`, advances the chunk-hash chain with each chunk's
/// RAW bytes, and probes the chunk checkpoint store: a hit skips the parse
/// workers entirely. Workers validate field counts against the header —
/// strict policy fails the run with the same typed kDataLoss error the
/// in-memory reader produces; lenient policy diverts the record to the
/// quarantine channel — compute per-column type-inference flags, and
/// persist a per-chunk checkpoint. The caller's thread is the sink: a
/// sequence-number reorder buffer restores input order regardless of
/// worker count, so output is byte-identical to `ReadCsvFile` for any
/// (num_workers, io_block_bytes, chunk_rows) — same table, same inferred
/// types, same errors in strict mode.
///
/// Every input record is accounted for in `report`:
/// `rows_in == rows_out + quarantined` (StreamIngestReport::Reconciles),
/// including on a resumed run (checkpointed chunks re-emit their
/// quarantined records).
///
/// `checkpointer` (optional) must be freshly constructed per call — the
/// ingest seeds its chain with an options fingerprint and the chain then
/// advances with this file's bytes. `quarantine` (optional) receives
/// diverted records under the lenient policy; without it they are still
/// counted in the report and the `stream.quarantined_records` counter.
Result<Table> ReadCsvFileStreaming(const std::string& path,
                                   const CsvReadOptions& csv_options,
                                   const StreamOptions& options,
                                   StreamPolicy policy,
                                   StreamIngestReport* report = nullptr,
                                   ChunkCheckpointer* checkpointer = nullptr,
                                   QuarantineWriter* quarantine = nullptr);

/// In-memory variant (tests, embedded inputs): identical semantics, the
/// text is consumed in `options.io_block_bytes` blocks. `source_label`
/// names the input in quarantine provenance.
Result<Table> ReadCsvStringStreaming(const std::string& text,
                                     const CsvReadOptions& csv_options,
                                     const StreamOptions& options,
                                     StreamPolicy policy,
                                     StreamIngestReport* report = nullptr,
                                     ChunkCheckpointer* checkpointer = nullptr,
                                     QuarantineWriter* quarantine = nullptr,
                                     const std::string& source_label =
                                         "<memory>");

}  // namespace greater

#endif  // GREATER_STREAM_CSV_INGEST_H_
