#ifndef GREATER_STREAM_STREAM_RUNTIME_H_
#define GREATER_STREAM_STREAM_RUNTIME_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "stream/bounded_queue.h"
#include "stream/stream_options.h"

namespace greater {

/// Liveness signal for one streaming stage worker. The worker calls Beat()
/// at least once per unit of work (per chunk); the watchdog compares the
/// last beat against the deadline.
class Heartbeat {
 public:
  explicit Heartbeat(std::string name)
      : name_(std::move(name)), last_beat_ns_(NowNs()) {}

  void Beat() { last_beat_ns_.store(NowNs(), std::memory_order_relaxed); }

  /// Marks the worker cleanly finished: the watchdog stops checking it.
  void MarkDone() { done_.store(true, std::memory_order_relaxed); }
  bool done() const { return done_.load(std::memory_order_relaxed); }

  uint64_t last_beat_ns() const {
    return last_beat_ns_.load(std::memory_order_relaxed);
  }
  const std::string& name() const { return name_; }

  static uint64_t NowNs() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  /// Test hook (armed by the "stream.worker_death" fault path): the worker
  /// exits WITHOUT MarkDone, simulating a thread that died silently — only
  /// the watchdog can notice it.
  void SimulateDeath() { simulate_death_.store(true, std::memory_order_relaxed); }
  bool death_simulated() const {
    return simulate_death_.load(std::memory_order_relaxed);
  }

 private:
  const std::string name_;
  std::atomic<uint64_t> last_beat_ns_;
  std::atomic<bool> done_{false};
  std::atomic<bool> simulate_death_{false};
};

/// Owns the worker threads, queues, and watchdog of one streaming
/// pipeline. Error model: the first failure (worker Status, worker
/// exception, or watchdog deadline) is recorded, every registered queue is
/// poisoned so all blocked threads unblock and drain, and Finish returns
/// that first error after joining everything — a failing pipeline shuts
/// down cleanly instead of deadlocking.
class StreamRuntime {
 public:
  explicit StreamRuntime(const StreamOptions& options);
  ~StreamRuntime();

  StreamRuntime(const StreamRuntime&) = delete;
  StreamRuntime& operator=(const StreamRuntime&) = delete;

  /// Registers a queue for poison-on-failure. The queue must outlive the
  /// runtime's Finish().
  void RegisterQueue(QueueControl* queue);

  /// Creates a heartbeat the watchdog monitors. Stable address for the
  /// runtime's lifetime.
  Heartbeat* AddHeartbeat(std::string name);

  /// Spawns a worker thread. `body` returns its terminal Status; a non-OK
  /// return or a thrown exception fails the whole pipeline. The heartbeat
  /// (optional) is marked done when the body returns — unless the body
  /// simulated death, in which case the watchdog must catch it.
  void Spawn(std::string name, Heartbeat* heartbeat,
             std::function<Status()> body);

  /// Records `error` as the pipeline failure (first error wins) and
  /// poisons every registered queue.
  void Fail(Status error);

  /// Joins all workers, then stops the watchdog, and returns the first
  /// error (OK on clean completion). Idempotent.
  Status Finish();

  /// First recorded error so far (OK if none). Usable while running.
  Status error() const;

 private:
  void WatchdogLoop();

  const uint64_t watchdog_timeout_ms_;
  const uint64_t watchdog_poll_ms_;

  mutable std::mutex mu_;
  Status error_;                       // first failure, OK if none
  bool failed_ = false;
  std::vector<QueueControl*> queues_;  // poisoned on failure
  std::vector<std::unique_ptr<Heartbeat>> heartbeats_;
  std::vector<std::thread> workers_;
  bool finished_ = false;

  std::atomic<bool> watchdog_stop_{false};
  std::thread watchdog_;
};

}  // namespace greater

#endif  // GREATER_STREAM_STREAM_RUNTIME_H_
