#ifndef GREATER_STREAM_FIT_STAGE_H_
#define GREATER_STREAM_FIT_STAGE_H_

#include <string>

#include "common/status.h"
#include "stream/csv_ingest.h"
#include "stream/stream_options.h"
#include "tabular/csv.h"
#include "tabular/schema.h"
#include "tabular/table_stream.h"

namespace greater {

/// The ingest side of out-of-core fitting: binds a CSV file on disk to the
/// typed-chunk contract (tabular/table_stream.h) the synthesizer's
/// streaming fit consumes.
///
/// Open() runs one schema-only streaming pass (bounded memory — rows are
/// dropped after their type flags merge) and freezes the inferred schema.
/// ChunkSource() then hands out a restartable source: every open starts a
/// fresh chunked read of the same file and converts each CsvChunk to a
/// typed Table under the frozen schema. Fit makes multiple passes
/// (observed values, then encoding), and every pass re-reads the file
/// under backpressure instead of holding it in memory.
///
/// With a checkpoint directory configured, all passes share one chunk
/// store (same directory + label; each pass constructs a fresh
/// ChunkCheckpointer, as the chain requires): the schema pass parses and
/// stores every chunk, later passes are parse-free checkpoint hits, and a
/// run killed mid-pass resumes from the chunks already stored —
/// re-running it is byte-identical because chunk keys hash the input
/// bytes and options fingerprint.
class FitStage {
 public:
  struct Options {
    CsvReadOptions csv;
    StreamOptions stream;
    StreamPolicy policy = StreamPolicy::kStrict;
    /// Directory for the shared chunk checkpoint store; empty disables
    /// checkpointing (every pass re-parses).
    std::string checkpoint_dir;
    /// Store label: passes with the same (dir, label, input, options)
    /// share chunks.
    std::string checkpoint_label = "oocore.fit";
  };

  /// Runs the schema pass. The file must exist and have a header record.
  static Result<FitStage> Open(const std::string& csv_path,
                               const Options& options);

  const Schema& schema() const { return schema_; }

  /// Chunk-hash chain after the schema pass: a content fingerprint over
  /// the options, header, and every input byte (the checkpointer chains
  /// even when disabled). Downstream stage checkpoints (the fitted-model
  /// artifact) key on it so any input edit invalidates them.
  uint64_t content_chain() const { return content_chain_; }

  /// Report of the most recent pass (schema pass at Open; each
  /// ChunkSource() stream overwrites it as it drains).
  const StreamIngestReport& report() const { return report_; }

  /// Restartable typed-chunk source over the file. The returned source
  /// (and its streams) borrow this FitStage, which must outlive them.
  TableChunkSource ChunkSource();

 private:
  FitStage(std::string csv_path, Options options, Schema schema)
      : csv_path_(std::move(csv_path)),
        options_(std::move(options)),
        schema_(std::move(schema)) {}

  std::string csv_path_;
  Options options_;
  Schema schema_;
  StreamIngestReport report_;
  uint64_t content_chain_ = 0;
};

}  // namespace greater

#endif  // GREATER_STREAM_FIT_STAGE_H_
