#include "stream/sample_emit.h"

#include <algorithm>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/artifact_io.h"
#include "common/fault.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "stream/chunk_checkpoint.h"
#include "synth/batch_decode.h"
#include "tabular/csv.h"
#include "tabular/table_builder.h"

namespace greater {
namespace {

void AppendReport(const SampleReport& report, ByteWriter* w) {
  w->PutU64(report.rows_requested);
  w->PutU64(report.rows_emitted);
  w->PutU64(report.rows_exhausted);
  w->PutU64(report.attempts);
  w->PutU64(report.rejected_invalid_value);
  w->PutU64(report.rejected_decode_failure);
  w->PutU64(report.rejected_mid_row);
  w->PutU64(report.injected_faults);
  w->PutU64(report.fallback_grammar_uses);
  w->PutU64(report.snapped_cells);
}

Status ReadReport(ByteReader* r, SampleReport* report) {
  uint64_t v = 0;
  GREATER_RETURN_NOT_OK(r->GetU64(&v));
  report->rows_requested = v;
  GREATER_RETURN_NOT_OK(r->GetU64(&v));
  report->rows_emitted = v;
  GREATER_RETURN_NOT_OK(r->GetU64(&v));
  report->rows_exhausted = v;
  GREATER_RETURN_NOT_OK(r->GetU64(&v));
  report->attempts = v;
  GREATER_RETURN_NOT_OK(r->GetU64(&v));
  report->rejected_invalid_value = v;
  GREATER_RETURN_NOT_OK(r->GetU64(&v));
  report->rejected_decode_failure = v;
  GREATER_RETURN_NOT_OK(r->GetU64(&v));
  report->rejected_mid_row = v;
  GREATER_RETURN_NOT_OK(r->GetU64(&v));
  report->injected_faults = v;
  GREATER_RETURN_NOT_OK(r->GetU64(&v));
  report->fallback_grammar_uses = v;
  GREATER_RETURN_NOT_OK(r->GetU64(&v));
  report->snapped_cells = v;
  return Status::OK();
}

Status WriteBlock(std::ofstream* out, const std::string& bytes,
                  const std::string& path) {
  out->write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out->flush();
  if (!out->good()) {
    return Status::Internal("I/O error writing CSV '" + path + "'");
  }
  return Status::OK();
}

}  // namespace

Result<SampleReport> SampleRowsToCsvStreaming(
    const GreatSynthesizer& model, size_t n, uint64_t seed,
    const std::string& output_path, const SampleEmitOptions& options) {
  Span span("stream.emit");
  if (!model.fitted()) {
    return Status::FailedPrecondition(
        "SampleRowsToCsvStreaming requires a fitted synthesizer");
  }
  const size_t chunk_rows = std::max<size_t>(1, options.chunk_rows);
  const SamplePolicy policy =
      options.use_model_policy ? model.options().policy : options.policy;

  MetricsRegistry& metrics = MetricsRegistry::Global();
  Counter& chunks_counter = metrics.GetCounter("stream.emit.chunks");
  Counter& hits_counter = metrics.GetCounter("stream.emit.checkpoint_hits");
  Counter& rows_counter = metrics.GetCounter("stream.emit.rows");

  // The chain covers everything that determines a chunk's bytes: the
  // trained model, the draw seed, and every emission option. Any change
  // flips every chunk key, so stale checkpoints can never replay.
  ChunkCheckpointer ckpt(options.checkpoint_dir, options.checkpoint_label);
  {
    GREATER_ASSIGN_OR_RETURN(std::string model_bytes,
                             model.SerializeBinary());
    ckpt.Mix(model_bytes);
    ByteWriter fp;
    fp.PutU64(n);
    fp.PutU64(seed);
    fp.PutU64(chunk_rows);
    fp.PutU8(static_cast<uint8_t>(options.delimiter));
    fp.PutBool(policy == SamplePolicy::kLenient);
    ckpt.Mix(fp.bytes());
  }

  // Same base derivation as Sample: `Rng r(seed)` would hand this base to
  // every chunk, and lane i derives its private stream from (base, i) —
  // chunking cannot shift any row's draws.
  uint64_t base = 0;
  if (n > 0) {
    Rng seed_rng(seed);
    base = GreatSynthesizer::DeriveSampleBase(&seed_rng);
  }

  // External decode workspace, the serving layer's per-worker idiom: one
  // engine, an optional private decode cache, hidden-state capacity from
  // the model's cache options.
  BatchDecodeEngine engine(model);
  std::unique_ptr<DecodeCache> cache;
  const DecodeCacheOptions& cache_options = model.options().decode_cache;
  if (cache_options.enabled) {
    cache = std::make_unique<DecodeCache>(cache_options);
  }
  DecodeWorkspace decode;
  decode.hidden_cache.set_capacity(cache_options.cache_hidden_states
                                       ? cache_options.hidden_capacity
                                       : 0);

  // The file is rewritten from scratch on every run: a partial file left
  // by a killed run is overwritten, and completed chunks replay from the
  // checkpoint store, so the finished file is byte-identical to an
  // uninterrupted run.
  std::ofstream out(output_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::Internal("cannot open CSV '" + output_path +
                            "' for writing");
  }
  std::string text;
  AppendCsvHeader(model.encoder().schema(), options.delimiter, &text);
  GREATER_RETURN_NOT_OK(WriteBlock(&out, text, output_path));

  SampleReport total;
  TableBuilder builder(model.encoder().schema());
  std::vector<Result<Row>> rows;
  uint64_t chunk_index = 0;
  for (size_t begin = 0; begin < n; begin += chunk_rows, ++chunk_index) {
    const size_t end = std::min(n, begin + chunk_rows);
    chunks_counter.Increment();

    ByteWriter descriptor;
    descriptor.PutU64(chunk_index);
    descriptor.PutU64(begin);
    descriptor.PutU64(end);
    uint64_t key = ckpt.MixChunk(descriptor.bytes());

    SampleReport chunk_report;
    text.clear();
    bool replayed = false;
    if (std::optional<ArtifactReader> doc = ckpt.TryLoad(chunk_index, key);
        doc.has_value()) {
      // Decode the stored chunk; corrupt payloads fall through to
      // recompute, matching the ingest side's policy.
      auto restore = [&]() -> Status {
        GREATER_ASSIGN_OR_RETURN(std::string_view csv_bytes,
                                 doc->Chunk("csv"));
        GREATER_ASSIGN_OR_RETURN(std::string_view report_bytes,
                                 doc->Chunk("report"));
        ByteReader r(report_bytes);
        GREATER_RETURN_NOT_OK(ReadReport(&r, &chunk_report));
        GREATER_RETURN_NOT_OK(r.ExpectEnd());
        text.assign(csv_bytes);
        return Status::OK();
      };
      if (restore().ok()) {
        replayed = true;
        hits_counter.Increment();
      } else {
        chunk_report = SampleReport();
        text.clear();
        metrics.GetCounter("stream.chunk_corrupt").Increment();
      }
    }

    if (!replayed) {
      GREATER_FAULT_POINT("stream.emit_chunk");
      rows.clear();
      engine.RunChunk(begin, end, /*conditions=*/nullptr, base, cache.get(),
                      &decode, &chunk_report, span.id(), &rows);
      builder.Reserve(end - begin);
      for (size_t i = 0; i < rows.size(); ++i) {
        Result<Row>& row = rows[i];
        if (row.ok()) {
          GREATER_RETURN_NOT_OK(builder.AppendRow(std::move(*row)));
          continue;
        }
        if (policy == SamplePolicy::kLenient &&
            row.status().code() == StatusCode::kResourceExhausted) {
          continue;  // dropped row, accounted as rows_exhausted
        }
        return row.status().WithContext(
            "sampling row " + std::to_string(begin + i + 1) + " of " +
            std::to_string(n));
      }
      GREATER_ASSIGN_OR_RETURN(Table chunk_table, builder.Build());
      AppendCsvRows(chunk_table, options.delimiter, &text);
      if (ckpt.enabled()) {
        ArtifactWriter doc(ChunkCheckpointer::kKind,
                           ChunkCheckpointer::kVersion);
        doc.AddChunk("csv", text);
        ByteWriter w;
        AppendReport(chunk_report, &w);
        doc.AddChunk("report", std::move(w).Take());
        ckpt.Store(chunk_index, key, doc);
      }
    }

    GREATER_RETURN_NOT_OK(WriteBlock(&out, text, output_path));
    rows_counter.Increment(chunk_report.rows_emitted);
    total.Merge(chunk_report);
  }

  out.close();
  if (!out.good()) {
    return Status::Internal("I/O error writing CSV '" + output_path + "'");
  }
  return total;
}

}  // namespace greater
