#ifndef GREATER_STREAM_BOUNDED_QUEUE_H_
#define GREATER_STREAM_BOUNDED_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

#include "common/fault.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace greater {

/// Outcome of a bounded-duration Pop (BoundedQueue::PopFor).
enum class QueuePop {
  kItem,     ///< an item was dequeued into `out`
  kTimeout,  ///< the wait expired with the queue still empty and open
  kDone,     ///< closed-and-drained or poisoned: no item will ever arrive
};

/// Outcome of a non-blocking or bounded-duration Push
/// (BoundedQueue::TryPush / PushFor).
enum class QueuePush {
  kAccepted,  ///< the item entered the queue
  kFull,      ///< capacity held for the whole wait; the item was NOT taken
  kDone,      ///< closed or poisoned: the item was NOT taken and never will be
};

/// Type-erased control surface of a BoundedQueue, so the stream runtime
/// can poison every queue in a pipeline without knowing element types.
class QueueControl {
 public:
  virtual ~QueueControl() = default;

  /// Marks the queue finished-with-error: buffered items are dropped and
  /// every blocked producer/consumer wakes immediately. Push becomes a
  /// no-op and Pop returns nullopt, so workers upstream and downstream of
  /// a failure drain and exit instead of deadlocking against a full (or
  /// empty) queue. Idempotent; the first error wins.
  virtual void Poison(Status error) = 0;

  /// Marks normal end-of-stream: no more pushes. Consumers drain the
  /// remaining items, then Pop returns nullopt (the poison pill).
  virtual void Close() = 0;
};

/// Fixed-capacity MPMC queue with blocking push — the backpressure
/// primitive of the streaming runtime. A producer ahead of a slow consumer
/// blocks once `capacity` items are buffered, so memory stays bounded by
/// construction; it never buffers without limit.
///
/// Observability: per-queue `stream.queue_depth.<name>` and
/// `stream.queue_peak.<name>` gauges, plus a global
/// `stream.queue_full_waits` counter (times a producer had to block).
///
/// Fault point `stream.queue_full` is evaluated each time a producer finds
/// the queue full; a fired fault poisons the queue with the injected
/// status, modelling a consumer that died while the producer was blocked.
template <typename T>
class BoundedQueue final : public QueueControl {
 public:
  BoundedQueue(std::string name, size_t capacity)
      : name_(std::move(name)),
        capacity_(capacity == 0 ? 1 : capacity),
        depth_gauge_(
            MetricsRegistry::Global().GetGauge("stream.queue_depth." + name_)),
        peak_gauge_(
            MetricsRegistry::Global().GetGauge("stream.queue_peak." + name_)),
        full_waits_(
            MetricsRegistry::Global().GetCounter("stream.queue_full_waits")) {
    depth_gauge_.Set(0);
    peak_gauge_.Set(0);
  }

  /// Blocks while the queue is full. Returns false when the item was NOT
  /// accepted (queue closed or poisoned) — the producer should stop.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
      if (poisoned_ || closed_) return false;
      if (items_.size() < capacity_) break;
      if (FaultRegistry::AnyArmed()) {
        Status injected = FaultRegistry::Global().Check("stream.queue_full");
        if (!injected.ok()) {
          PoisonLocked(std::move(injected), lock);
          return false;
        }
      }
      full_waits_.Increment();
      not_full_.wait(lock);
    }
    AppendLocked(std::move(item), lock);
    return true;
  }

  /// Non-blocking Push: admission paths that must never stall a submitter
  /// use this (and PushFor) instead of Push. `*item` is moved from ONLY on
  /// kAccepted — on kFull/kDone the caller still owns it and can shed,
  /// retry, or fail it typed. FIFO order is identical to Push (same tail
  /// append under the same lock).
  QueuePush TryPush(T* item) {
    std::unique_lock<std::mutex> lock(mu_);
    if (poisoned_ || closed_) return QueuePush::kDone;
    if (items_.size() >= capacity_) return QueuePush::kFull;
    AppendLocked(std::move(*item), lock);
    return QueuePush::kAccepted;
  }

  /// Push with a bounded wait: blocks up to `timeout_ms` for capacity,
  /// then gives up with kFull instead of waiting forever — the overload
  /// contract of serving admission (a submitter behind a stuffed queue is
  /// shed with a retry-after hint, never parked indefinitely). Shares
  /// Push's semantics otherwise, including the `stream.queue_full` fault
  /// point and the `stream.queue_full_waits` counter on each blocked wait.
  QueuePush PushFor(uint64_t timeout_ms, T* item) {
    std::unique_lock<std::mutex> lock(mu_);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (true) {
      if (poisoned_ || closed_) return QueuePush::kDone;
      if (items_.size() < capacity_) break;
      if (FaultRegistry::AnyArmed()) {
        Status injected = FaultRegistry::Global().Check("stream.queue_full");
        if (!injected.ok()) {
          PoisonLocked(std::move(injected), lock);
          return QueuePush::kDone;
        }
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        return QueuePush::kFull;
      }
      full_waits_.Increment();
      not_full_.wait_until(lock, deadline);
    }
    AppendLocked(std::move(*item), lock);
    return QueuePush::kAccepted;
  }

  /// Items currently buffered. A watermark hook for overload controllers
  /// (queue-depth shedding and brownout entry read this), not a
  /// synchronization primitive — the value is stale the moment the lock
  /// drops.
  size_t depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  /// Blocks until an item, end-of-stream, or poison. nullopt means "no
  /// more items will ever arrive" (closed-and-drained, or poisoned).
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] {
      return poisoned_ || closed_ || !items_.empty();
    });
    if (poisoned_ || items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    depth_gauge_.Set(static_cast<int64_t>(items_.size()));
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Pop with a bounded wait, for consumers that must keep signalling
  /// liveness while idle: a serving-layer worker parked on an empty
  /// admission queue wakes every `timeout_ms` to beat its heartbeat, so
  /// the watchdog convicts only workers stalled *inside* a unit of work,
  /// never merely idle ones. kItem stores the item into `*out`.
  QueuePop PopFor(uint64_t timeout_ms, T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait_for(lock, std::chrono::milliseconds(timeout_ms), [&] {
      return poisoned_ || closed_ || !items_.empty();
    });
    if (poisoned_) return QueuePop::kDone;
    if (items_.empty()) return closed_ ? QueuePop::kDone : QueuePop::kTimeout;
    *out = std::move(items_.front());
    items_.pop_front();
    depth_gauge_.Set(static_cast<int64_t>(items_.size()));
    lock.unlock();
    not_full_.notify_one();
    return QueuePop::kItem;
  }

  void Close() override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  void Poison(Status error) override {
    std::unique_lock<std::mutex> lock(mu_);
    PoisonLocked(std::move(error), lock);
  }

  /// First poison status (OK when never poisoned).
  Status error() const {
    std::lock_guard<std::mutex> lock(mu_);
    return error_;
  }

  const std::string& name() const { return name_; }
  size_t capacity() const { return capacity_; }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

 private:
  /// Shared tail of every accepting push: append, refresh the depth/peak
  /// gauges, release the lock, and wake one consumer.
  void AppendLocked(T item, std::unique_lock<std::mutex>& lock) {
    items_.push_back(std::move(item));
    size_t depth = items_.size();
    depth_gauge_.Set(static_cast<int64_t>(depth));
    if (static_cast<int64_t>(depth) > peak_) {
      peak_ = static_cast<int64_t>(depth);
      peak_gauge_.Set(peak_);
    }
    // Callers return right after; the unique_lock is left released (its
    // destructor tolerates that), so the woken consumer can run at once.
    lock.unlock();
    not_empty_.notify_one();
  }

  void PoisonLocked(Status error, std::unique_lock<std::mutex>& lock) {
    if (!poisoned_) {
      poisoned_ = true;
      error_ = std::move(error);
      items_.clear();  // drop buffered work; nobody will consume it
      depth_gauge_.Set(0);
    }
    lock.unlock();
    not_empty_.notify_all();
    not_full_.notify_all();
    lock.lock();
  }

  const std::string name_;
  const size_t capacity_;
  Gauge& depth_gauge_;
  Gauge& peak_gauge_;
  Counter& full_waits_;

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
  bool poisoned_ = false;
  int64_t peak_ = 0;
  Status error_;
};

}  // namespace greater

#endif  // GREATER_STREAM_BOUNDED_QUEUE_H_
