#ifndef GREATER_STREAM_STREAM_OPTIONS_H_
#define GREATER_STREAM_STREAM_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace greater {

/// What to do with a record that fails to parse or validate.
enum class StreamPolicy {
  /// First malformed record fails the run with a typed Status.
  kStrict,
  /// Malformed records are diverted to the quarantine channel (written to
  /// `quarantine_path` when set, counted always) and the run continues.
  kLenient,
};

/// Knobs for the chunked, bounded-queue stage runtime in src/stream.
///
/// Memory ceiling: a stage holds at most `queue_capacity` chunks in its
/// inbox plus one in flight per worker, so peak queue-resident rows are
/// bounded by `queue_capacity * chunk_rows` per queue — backpressure, not
/// unbounded buffering, absorbs a slow consumer.
struct StreamOptions {
  /// Master switch: when false, pipeline paths use the in-memory
  /// implementations unchanged.
  bool enabled = false;

  /// Records per chunk. Smaller chunks mean finer-grained resume and a
  /// lower memory ceiling; larger chunks amortize queue and checkpoint
  /// overhead.
  size_t chunk_rows = 1024;

  /// Max chunks buffered per queue before producers block (backpressure).
  size_t queue_capacity = 4;

  /// Parallel workers in the parse/transform stage. Output order (and thus
  /// byte-identical determinism) is preserved at any worker count by the
  /// sink's sequence-number reorder buffer.
  size_t num_workers = 1;

  /// Bytes per read() from the input file. Purely an I/O granularity —
  /// record splitting is independent of blocking.
  size_t io_block_bytes = size_t{1} << 16;

  /// Max raw bytes in a single CSV record; exceeding it is a typed
  /// kResourceExhausted error (never unbounded buffering). 0 disables.
  size_t max_record_bytes = size_t{4} << 20;

  /// A stage whose heartbeat goes silent for this long is declared hung
  /// and the run fails with kDeadlineExceeded instead of blocking forever.
  uint64_t watchdog_timeout_ms = 30000;

  /// How often the watchdog samples heartbeats.
  uint64_t watchdog_poll_ms = 10;

  /// Where quarantined records are written (CSV with provenance columns).
  /// Empty: records are counted and reported but not persisted.
  std::string quarantine_path;
};

/// Reconciliation report for one streaming ingest: every input record is
/// accounted for as either a kept row or a quarantined record.
struct StreamIngestReport {
  uint64_t rows_in = 0;       ///< data records seen (header excluded)
  uint64_t rows_out = 0;      ///< rows in the produced table
  uint64_t quarantined = 0;   ///< records diverted to quarantine
  uint64_t chunks = 0;        ///< chunks processed (hit or computed)
  uint64_t chunk_checkpoint_hits = 0;  ///< chunks restored from checkpoint

  /// The books balance: nothing was silently dropped.
  bool Reconciles() const { return rows_in == rows_out + quarantined; }
};

}  // namespace greater

#endif  // GREATER_STREAM_STREAM_OPTIONS_H_
