#ifndef GREATER_STREAM_SAMPLE_EMIT_H_
#define GREATER_STREAM_SAMPLE_EMIT_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "synth/great_synthesizer.h"
#include "synth/sample_report.h"

namespace greater {

/// Knobs for streaming sample emission (SampleRowsToCsvStreaming).
struct SampleEmitOptions {
  /// Rows decoded, rendered, and flushed per chunk — the emission-side
  /// memory bound. One chunk of rows is the most ever held in memory.
  size_t chunk_rows = 1024;
  char delimiter = ',';
  /// Overrides the model's configured policy when set to a value; strict
  /// fails on the first exhausted row, lenient drops it and keeps going.
  SamplePolicy policy = SamplePolicy::kStrict;
  bool use_model_policy = true;  ///< when true, `policy` is ignored
  /// Directory for per-chunk crash-resume checkpoints; empty disables.
  /// A rerun after a kill -9 replays completed chunks from the store and
  /// produces a byte-identical output file.
  std::string checkpoint_dir;
  std::string checkpoint_label = "oocore.emit";
};

/// Streams `n` sampled rows from a fitted synthesizer into a CSV file,
/// chunk by chunk: each chunk is decoded by a BatchDecodeEngine (lockstep,
/// one model evaluation per shared-key group), assembled through the
/// columnar TableBuilder, rendered with the incremental CSV writer, and
/// appended to `output_path` before the next chunk starts — so peak memory
/// is one chunk of rows regardless of `n`.
///
/// Determinism: the call derives one stream base from Rng(seed) and lane i
/// draws from Rng::DeriveStreamSeed(base, i), exactly like
/// `Rng r(seed); model.Sample(n, &r)` — the output file holds the same
/// rows, in the same order, at ANY chunk_rows value.
///
/// Crash resume: with a checkpoint directory, each completed chunk stores
/// its rendered CSV text and report delta under a key chained from the
/// model fingerprint and emission options. The output file is rewritten
/// from scratch on every run (a partial file from a killed run is simply
/// overwritten), completed chunks replay from the store without touching
/// the model, and the finished file is byte-identical to an uninterrupted
/// run. Emits stream.emit.* metrics; the returned report reconciles.
Result<SampleReport> SampleRowsToCsvStreaming(const GreatSynthesizer& model,
                                              size_t n, uint64_t seed,
                                              const std::string& output_path,
                                              const SampleEmitOptions& options);

}  // namespace greater

#endif  // GREATER_STREAM_SAMPLE_EMIT_H_
