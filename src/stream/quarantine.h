#ifndef GREATER_STREAM_QUARANTINE_H_
#define GREATER_STREAM_QUARANTINE_H_

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>

#include "common/status.h"

namespace greater {

/// One record diverted from the stream instead of failing the run.
struct QuarantinedRecord {
  /// Which input it came from (e.g. the CSV path or an ingest label).
  std::string source;
  /// 1-based record number in that input (header = record 1).
  uint64_t record_number = 0;
  /// Why it was quarantined — the typed Status the strict policy would
  /// have failed the run with.
  Status why;
  /// Raw record text as read, for post-mortems.
  std::string raw;
};

/// Sink for quarantined records under the lenient policy. Writes one CSV
/// line per record — `source,record_number,code,message,raw` — to
/// `path`, or only counts when `path` is empty. Thread-safe; every
/// record increments the `stream.quarantined_records` counter, which the
/// ingest reconciliation (`rows_in == rows_out + quarantined`) and the
/// bench_compare `--fail-quarantine-above` gate both read.
class QuarantineWriter {
 public:
  /// Truncates any existing file at `path` (a rerun's quarantine reflects
  /// that run only). Empty path: count-only mode.
  explicit QuarantineWriter(std::string path);

  /// Appends one record. Returns the I/O error if persisting it failed —
  /// under the lenient policy losing quarantine evidence is itself a
  /// failure worth surfacing.
  Status Write(const QuarantinedRecord& record);

  /// Records written (or counted) through this writer.
  uint64_t count() const;

  const std::string& path() const { return path_; }

  QuarantineWriter(const QuarantineWriter&) = delete;
  QuarantineWriter& operator=(const QuarantineWriter&) = delete;

 private:
  const std::string path_;
  mutable std::mutex mu_;
  std::ofstream out_;
  uint64_t count_ = 0;
  bool open_failed_ = false;
};

}  // namespace greater

#endif  // GREATER_STREAM_QUARANTINE_H_
